//! Figure 4 — scalability with the average length of sequences.
//!
//! Paper setup: 200 artificial sequences, average length swept 200 →
//! 1000, ME-based `SimSearch-SST_C` vs. sequential scanning, category
//! count chosen to keep the index smaller than the database. Expected
//! shapes (paper Figure 4): both curves grow roughly *quadratically*
//! with the length; the index stays well below the scan everywhere.

use warptree_bench::{
    banner, build_index, csv_row, csv_sink, database_size, measure_index, measure_seqscan, to_disk,
    IndexKind, Method, Scale,
};
use warptree_core::search::{SearchParams, SeqScanMode};
use warptree_data::{artificial_corpus, ArtificialConfig, QueryConfig, QueryWorkload};

fn main() {
    let scale = Scale::from_args();
    banner("Figure 4: query time vs. average sequence length", scale);
    let (n_seqs, lengths, n_queries): (usize, Vec<usize>, usize) = match scale {
        Scale::Quick => (60, vec![100, 200, 300, 400, 500], 5),
        Scale::Full => (200, vec![200, 400, 600, 800, 1000], 10),
    };
    let epsilon = 10.0;
    // Few categories keep the index below the database size, as in the
    // paper's scalability setup.
    let cats = 20;

    println!(
        "{} artificial sequences, ε = {epsilon}, SST_C/ME with {cats} \
         categories\n",
        n_seqs
    );
    println!(
        "{:>8} | {:>12} {:>12} | {:>8} | {:>14} {:>14}",
        "length", "SeqScan(s)", "SST_C(s)", "speedup", "scan cells", "index cells"
    );
    println!("{}", "-".repeat(80));
    let mut csv = csv_sink("fig4", "length,seqscan_s,sst_s,scan_cells,index_cells");
    for &len in &lengths {
        let store = artificial_corpus(&ArtificialConfig {
            sequences: n_seqs,
            len,
            len_jitter: len / 10,
            seed: 0xF14_0000 + len as u64,
            ..Default::default()
        });
        let queries = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: n_queries,
                mean_len: 20,
                len_jitter: 4,
                noise_std: 0.5,
                bands: None,
                ..Default::default()
            },
        );
        let params = SearchParams::with_epsilon(epsilon);
        let scan = measure_seqscan(&store, &queries, &params, SeqScanMode::Full);
        let built = build_index(&store, IndexKind::Sparse, Method::Me, cats);
        let dsk = to_disk(&built, "fig", database_size(&store));
        let idx = measure_index(&dsk.disk, &built.alphabet, &store, &queries, &params);
        println!(
            "{:>8} | {:>12.3} {:>12.3} | {:>7.1}x | {:>14.2e} {:>14.2e}",
            len,
            scan.secs_per_query,
            idx.secs_per_query,
            scan.secs_per_query / idx.secs_per_query,
            scan.cells_per_query,
            idx.cells_per_query
        );
        csv_row(
            &mut csv,
            &format!(
                "{len},{},{},{},{}",
                scan.secs_per_query, idx.secs_per_query, scan.cells_per_query, idx.cells_per_query
            ),
        );
    }
    println!(
        "\nshapes to check vs. paper Figure 4: both curves grow \
         ~quadratically with length; SST_C stays well below SeqScan."
    );
}
