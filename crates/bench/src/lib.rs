#![warn(missing_docs)]

//! # warptree-bench
//!
//! Experiment harness reproducing every table and figure of Park et al.
//! (ICDE 2000) §7, plus ablations. Each `exp_*` binary regenerates one
//! artifact:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `exp_table1` | Table 1 — index sizes vs. number of categories |
//! | `exp_table2` | Table 2 — query time per algorithm vs. categories |
//! | `exp_table3` | Table 3 — SeqScan vs. SimSearch-SST_C over ε |
//! | `exp_fig4` | Figure 4 — scalability in sequence length |
//! | `exp_fig5` | Figure 5 — scalability in number of sequences |
//! | `exp_ablation` | early-abandon / window / disk-vs-memory ablations |
//!
//! Run with `--full` for paper-scale parameters (slower); the default
//! scale finishes in minutes and preserves every qualitative shape.
//! All corpora and workloads are seeded — reruns are bit-identical.

use std::sync::Arc;
use std::time::Instant;

use warptree_core::categorize::{Alphabet, CatStore};
use warptree_core::search::{
    run_query, seq_scan, QueryRequest, SearchParams, SearchStats, SeqScanMode, IndexBackend,
};
use warptree_core::sequence::SequenceStore;
use warptree_data::{stock_corpus, QueryConfig, QueryWorkload, StockConfig};

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced parameters: minutes on a laptop, same qualitative shapes.
    Quick,
    /// The paper's parameters (545 × 232 stock corpus, 20-query
    /// workloads, ε up to 50).
    Full,
}

impl Scale {
    /// Parses `--full` from the process arguments.
    pub fn from_args() -> Self {
        if std::env::args().any(|a| a == "--full") {
            Scale::Full
        } else {
            Scale::Quick
        }
    }

    /// The stock corpus for this scale.
    pub fn stock(&self) -> SequenceStore {
        match self {
            Scale::Quick => stock_corpus(&StockConfig {
                sequences: 150,
                mean_len: 120,
                len_std: 20.0,
                ..Default::default()
            }),
            Scale::Full => stock_corpus(&StockConfig::default()),
        }
    }

    /// The stratified query workload for this scale (mean length 20, as
    /// in the paper).
    pub fn queries(&self, store: &SequenceStore) -> QueryWorkload {
        let count = match self {
            Scale::Quick => 8,
            Scale::Full => 20,
        };
        QueryWorkload::draw(
            store,
            &QueryConfig {
                count,
                mean_len: 20,
                len_jitter: 4,
                noise_std: 0.5,
                ..Default::default()
            },
        )
    }

    /// Category counts swept by Tables 1–2.
    pub fn category_counts(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![10, 20, 40, 80, 120],
            Scale::Full => vec![10, 20, 40, 80, 120, 160, 200, 250, 300],
        }
    }
}

/// Which index structure an experiment row uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Uncategorized full tree (`ST`).
    Exact,
    /// Categorized full tree (`ST_C`).
    Full,
    /// Categorized sparse tree (`SST_C`).
    Sparse,
}

/// Categorization method of an experiment row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Equal-length.
    El,
    /// Maximum-entropy.
    Me,
}

/// A built index ready for measurement.
pub struct BuiltIndex {
    /// The alphabet used.
    pub alphabet: Alphabet,
    /// The categorized corpus.
    pub cat: Arc<CatStore>,
    /// The suffix tree.
    pub tree: warptree_suffix::SuffixTree,
    /// Wall-clock build time in seconds.
    pub build_secs: f64,
}

/// Builds an index over `store`.
pub fn build_index(
    store: &SequenceStore,
    kind: IndexKind,
    method: Method,
    categories: usize,
) -> BuiltIndex {
    let t0 = Instant::now();
    let alphabet = match (kind, method) {
        (IndexKind::Exact, _) => Alphabet::singleton(store).unwrap(),
        (_, Method::El) => Alphabet::equal_length(store, categories).unwrap(),
        (_, Method::Me) => Alphabet::max_entropy(store, categories).unwrap(),
    };
    let cat = Arc::new(alphabet.encode_store(store));
    let tree = match kind {
        IndexKind::Sparse => warptree_suffix::build_sparse(cat.clone()),
        _ => warptree_suffix::build_full(cat.clone()),
    };
    BuiltIndex {
        alphabet,
        cat,
        tree,
        build_secs: t0.elapsed().as_secs_f64(),
    }
}

/// Serialized (on-disk) size of an index in bytes — the paper's "index
/// size" metric. Writes to a temp file and removes it.
pub fn disk_size(tree: &warptree_suffix::SuffixTree, tag: &str) -> u64 {
    let path = std::env::temp_dir().join(format!("warptree-size-{}-{tag}.wt", std::process::id()));
    let size = warptree_disk::write_tree(tree, &path).unwrap();
    std::fs::remove_file(&path).ok();
    size
}

/// Index size with edge labels *materialized* (inlined) instead of stored
/// as `(seq, start, len)` references into the corpus — the representation
/// the paper's numbers correspond to. `sym_bytes` is the per-symbol cost
/// (8 for raw f64 values in ST, 4 for category symbols).
///
/// Our reference-compressed format makes even the uncategorized ST small;
/// this metric restores comparability with the paper's Table 1.
pub fn materialized_size(tree: &warptree_suffix::SuffixTree, sym_bytes: u64) -> u64 {
    let mut size = 0u64;
    for id in 0..tree.node_count() as u32 {
        let n = tree.node(id);
        // Fixed head (annotations + counts), suffix labels, child
        // pointers, plus the inlined label symbols.
        size += 24
            + 12 * n.suffixes.len() as u64
            + 12 * n.children.len() as u64
            + 4
            + n.label.len as u64 * sym_bytes;
    }
    size
}

/// A disk-resident copy of a built index, opened with a buffer pool
/// sized like the paper's "limited main memory" setting (proportional to
/// the raw database, not the index).
pub struct DiskIndex {
    /// The opened on-disk tree.
    pub disk: warptree_disk::DiskTree,
    /// Size of the index file in bytes.
    pub file_size: u64,
    path: std::path::PathBuf,
}

impl Drop for DiskIndex {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Writes `built` to a temp file and reopens it with a buffer pool of
/// roughly `cache_bytes` (at least 16 pages). The paper evaluates a
/// *disk-based* index: measuring through this path charges page I/O,
/// CRC verification and record decoding to every traversal, which is
/// what makes oversized indexes slow (the right branch of Table 2's
/// U-shape).
pub fn to_disk(built: &BuiltIndex, tag: &str, cache_bytes: u64) -> DiskIndex {
    let path = std::env::temp_dir().join(format!("warptree-run-{}-{tag}.wt", std::process::id()));
    let file_size = warptree_disk::write_tree(&built.tree, &path).unwrap();
    let cache_pages = ((cache_bytes / warptree_disk::PAGE_SIZE as u64) as usize).max(16);
    let disk =
        warptree_disk::DiskTree::open(&path, built.cat.clone(), cache_pages, cache_pages * 8)
            .unwrap();
    DiskIndex {
        disk,
        file_size,
        path,
    }
}

/// Raw size of the numeric database in bytes (8 bytes per element), the
/// paper's reference point for index-size ratios.
pub fn database_size(store: &SequenceStore) -> u64 {
    store.total_len() * 8
}

/// Result of running one workload against one search strategy.
#[derive(Debug, Clone, Default)]
pub struct Measured {
    /// Mean wall-clock seconds per query.
    pub secs_per_query: f64,
    /// Mean total table cells per query (machine-independent cost).
    pub cells_per_query: f64,
    /// Mean answers per query.
    pub answers_per_query: f64,
    /// Mean post-processed candidates per query.
    pub candidates_per_query: f64,
    /// Per-query wall-clock seconds, sorted ascending.
    pub latencies: Vec<f64>,
}

impl Measured {
    /// The `q`-quantile (0..=1) of the per-query latencies, in seconds.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.latencies.is_empty() {
            return 0.0;
        }
        let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
        self.latencies[idx]
    }
}

/// Runs the full `SimSearch` (filter + post-process) workload over an
/// index.
pub fn measure_index<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    queries: &QueryWorkload,
    params: &SearchParams,
) -> Measured {
    let mut total = Measured::default();
    for q in queries.queries() {
        let req = QueryRequest::threshold_params(&q.values, params.clone());
        let t0 = Instant::now();
        let (answers, stats) = run_query(tree, alphabet, store, &req).unwrap();
        let answers = answers.into_answer_set();
        let secs = t0.elapsed().as_secs_f64();
        total.latencies.push(secs);
        total.secs_per_query += secs;
        total.cells_per_query += stats.total_cells() as f64;
        total.answers_per_query += answers.len() as f64;
        total.candidates_per_query += stats.postprocessed as f64;
    }
    let n = queries.len().max(1) as f64;
    total.secs_per_query /= n;
    total.cells_per_query /= n;
    total.answers_per_query /= n;
    total.candidates_per_query /= n;
    total
        .latencies
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    total
}

/// Runs the `SeqScan` baseline workload.
pub fn measure_seqscan(
    store: &SequenceStore,
    queries: &QueryWorkload,
    params: &SearchParams,
    mode: SeqScanMode,
) -> Measured {
    let mut total = Measured::default();
    for q in queries.queries() {
        let mut stats = SearchStats::default();
        let t0 = Instant::now();
        let answers = seq_scan(store, &q.values, params, mode, &mut stats);
        let secs = t0.elapsed().as_secs_f64();
        total.latencies.push(secs);
        total.secs_per_query += secs;
        total.cells_per_query += stats.total_cells() as f64;
        total.answers_per_query += answers.len() as f64;
    }
    let n = queries.len().max(1) as f64;
    total.secs_per_query /= n;
    total.cells_per_query /= n;
    total.answers_per_query /= n;
    total
        .latencies
        .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    total
}

/// Opens a CSV sink when `--csv DIR` was passed on the command line:
/// `DIR/<name>.csv` with the given header. Returns `None` otherwise.
pub fn csv_sink(name: &str, header: &str) -> Option<std::fs::File> {
    use std::io::Write;
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .windows(2)
        .find(|w| w[0] == "--csv")
        .map(|w| std::path::PathBuf::from(&w[1]))?;
    std::fs::create_dir_all(&dir).ok()?;
    let mut f = std::fs::File::create(dir.join(format!("{name}.csv"))).ok()?;
    writeln!(f, "{header}").ok()?;
    Some(f)
}

/// Writes one CSV row when a sink is open.
pub fn csv_row(sink: &mut Option<std::fs::File>, row: &str) {
    use std::io::Write;
    if let Some(f) = sink {
        let _ = writeln!(f, "{row}");
    }
}

/// Formats a byte count as KiB with thousands separators, as in Table 1.
pub fn kib(bytes: u64) -> String {
    group_digits(bytes / 1024)
}

/// Formats an integer with `,` thousands separators.
pub fn group_digits(mut v: u64) -> String {
    let mut parts = Vec::new();
    loop {
        let chunk = v % 1000;
        v /= 1000;
        if v == 0 {
            parts.push(format!("{chunk}"));
            break;
        }
        parts.push(format!("{chunk:03}"));
    }
    parts.reverse();
    parts.join(",")
}

/// Prints a header banner for an experiment binary.
pub fn banner(title: &str, scale: Scale) {
    println!("{}", "=".repeat(72));
    println!("{title}");
    println!(
        "scale: {} (pass --full for paper-scale parameters)",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_digits_formats() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn build_and_measure_smoke() {
        let store = stock_corpus(&StockConfig {
            sequences: 12,
            mean_len: 40,
            ..Default::default()
        });
        let built = build_index(&store, IndexKind::Sparse, Method::Me, 8);
        assert!(built.tree.suffix_count() > 0);
        let queries = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: 3,
                mean_len: 6,
                ..Default::default()
            },
        );
        let params = SearchParams::with_epsilon(2.0);
        let m = measure_index(&built.tree, &built.alphabet, &store, &queries, &params);
        let s = measure_seqscan(&store, &queries, &params, SeqScanMode::Full);
        // Identical answer counts, index does not do more cell work.
        assert_eq!(m.answers_per_query, s.answers_per_query);
        assert!(m.cells_per_query <= s.cells_per_query);
        // Quantiles come from the sorted latency list.
        assert_eq!(m.latencies.len(), queries.len());
        assert!(m.quantile(0.0) <= m.quantile(1.0));
        assert!(m.quantile(0.5) > 0.0);
    }

    #[test]
    fn disk_size_positive_and_sparse_smaller() {
        let store = stock_corpus(&StockConfig {
            sequences: 20,
            mean_len: 60,
            ..Default::default()
        });
        let full = build_index(&store, IndexKind::Full, Method::Me, 10);
        let sparse = build_index(&store, IndexKind::Sparse, Method::Me, 10);
        let fs = disk_size(&full.tree, "t-full");
        let ss = disk_size(&sparse.tree, "t-sparse");
        assert!(fs > 0 && ss > 0);
        assert!(ss < fs, "sparse index ({ss}) not smaller than full ({fs})");
    }
}
