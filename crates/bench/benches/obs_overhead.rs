//! The no-op overhead contract of `warptree-obs`: a search run with
//! detached (`noop`) metrics must cost the same as one with live
//! counters, because every inactive `Counter::add` is an inlined branch
//! on a `None`. This bench runs the same query in all three modes —
//! noop, detached-active, and registry-backed — so a regression in the
//! inlining shows up as a gap between the first line and the others.
//!
//! The tracing layer extends the contract: `traced_off` (metrics with
//! a no-op `Trace`, the default every untraced query takes) must match
//! the plain modes — an inactive trace adds one inlined branch per
//! stage, zero atomics, zero clock reads — and `traced_on` (an active
//! span tree recorded per query) is the sampled-tracing price, which
//! must stay within a few percent of the untraced run.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use warptree_bench::{build_index, IndexKind, Method};
use warptree_core::search::{run_query_with, QueryRequest, SearchMetrics, SearchParams};
use warptree_data::{stock_corpus, QueryConfig, QueryWorkload, StockConfig};
use warptree_obs::{MetricsRegistry, Trace};

fn bench_obs_overhead(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 60,
        mean_len: 80,
        ..Default::default()
    });
    let queries = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 1,
            mean_len: 16,
            len_jitter: 0,
            noise_std: 0.5,
            ..Default::default()
        },
    );
    let q = &queries.queries()[0].values;
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 40);
    let params = SearchParams::with_epsilon(10.0);

    let reg = MetricsRegistry::new();
    let modes: [(&str, SearchMetrics); 4] = [
        ("noop", SearchMetrics::noop()),
        ("active", SearchMetrics::new()),
        ("registry", SearchMetrics::register(&reg)),
        // The untraced fast path every production query takes when
        // tracing is *available* but not sampled.
        ("traced_off", SearchMetrics::new().with_trace(Trace::noop())),
    ];
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(30);
    let req = QueryRequest::threshold_params(q, params);
    for (name, metrics) in &modes {
        g.bench_function(*name, |b| {
            b.iter(|| {
                black_box(
                    run_query_with(
                        &built.tree,
                        &built.alphabet,
                        &store,
                        black_box(&req),
                        metrics,
                    )
                    .unwrap(),
                )
            })
        });
    }
    // The sampled-tracing price: a fresh active trace per iteration
    // (exactly what the server's 1-in-N sampler pays), span tree and
    // counter-delta attributes included.
    g.bench_function("traced_on", |b| {
        b.iter(|| {
            let trace = Trace::active("bench");
            let metrics = SearchMetrics::new().with_trace(trace.clone());
            black_box(
                run_query_with(
                    &built.tree,
                    &built.alphabet,
                    &store,
                    black_box(&req),
                    &metrics,
                )
                .unwrap(),
            );
            black_box(trace.finish())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
