//! Scalability benchmarks in micro form (Figures 4 and 5): query cost
//! vs. sequence length and vs. number of sequences, SeqScan against the
//! sparse index.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use warptree_bench::{build_index, IndexKind, Method};
use warptree_core::search::{
    run_query, seq_scan, QueryRequest, SearchParams, SearchStats, SeqScanMode,
};
use warptree_data::{artificial_corpus, ArtificialConfig, QueryConfig, QueryWorkload};

fn setup(
    sequences: usize,
    len: usize,
) -> (
    warptree_core::sequence::SequenceStore,
    Vec<f64>,
    warptree_bench::BuiltIndex,
) {
    let store = artificial_corpus(&ArtificialConfig {
        sequences,
        len,
        seed: 0xBE4C4 + (sequences * 31 + len) as u64,
        ..Default::default()
    });
    let queries = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 1,
            mean_len: 12,
            len_jitter: 0,
            noise_std: 0.5,
            bands: None,
            ..Default::default()
        },
    );
    let q = queries.queries()[0].values.clone();
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 16);
    (store, q, built)
}

fn bench_scale_length(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_length_fig4");
    g.sample_size(10);
    for len in [50usize, 100, 200] {
        let (store, q, built) = setup(20, len);
        let params = SearchParams::with_epsilon(6.0);
        g.bench_with_input(BenchmarkId::new("seqscan", len), &len, |b, _| {
            b.iter(|| {
                let mut stats = SearchStats::default();
                black_box(seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats))
            })
        });
        g.bench_with_input(BenchmarkId::new("sst_c", len), &len, |b, _| {
            let req = QueryRequest::threshold_params(&q, params.clone());
            b.iter(|| black_box(run_query(&built.tree, &built.alphabet, &store, &req).unwrap()))
        });
    }
    g.finish();
}

fn bench_scale_count(c: &mut Criterion) {
    let mut g = c.benchmark_group("scale_count_fig5");
    g.sample_size(10);
    for n in [25usize, 50, 100] {
        let (store, q, built) = setup(n, 80);
        let params = SearchParams::with_epsilon(6.0);
        g.bench_with_input(BenchmarkId::new("seqscan", n), &n, |b, _| {
            b.iter(|| {
                let mut stats = SearchStats::default();
                black_box(seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats))
            })
        });
        g.bench_with_input(BenchmarkId::new("sst_c", n), &n, |b, _| {
            let req = QueryRequest::threshold_params(&q, params.clone());
            b.iter(|| black_box(run_query(&built.tree, &built.alphabet, &store, &req).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_scale_length, bench_scale_count);
criterion_main!(benches);
