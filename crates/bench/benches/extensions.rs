//! Benchmarks of the extension features: k-NN search, multivariate
//! search, warping-path extraction, and index appends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use warptree_bench::{build_index, IndexKind, Method};
use warptree_core::dtw_path::dtw_with_path;
use warptree_core::multivariate::{mv_sim_search, GridAlphabet, MvSequence, MvStore};
use warptree_core::search::{run_query, KnnParams, QueryRequest, SearchParams};
use warptree_data::{stock_corpus, StockConfig};

fn bench_knn(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 60,
        mean_len: 80,
        ..Default::default()
    });
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 40);
    let q = store
        .get(warptree_core::sequence::SeqId(7))
        .subseq(10, 14)
        .to_vec();
    let mut g = c.benchmark_group("knn");
    g.sample_size(20);
    for k in [1usize, 10, 50] {
        g.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            let req = QueryRequest::knn_params(&q, KnnParams::new(k));
            b.iter(|| {
                black_box(run_query(&built.tree, &built.alphabet, &store, black_box(&req)).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_multivariate(c: &mut Criterion) {
    // 2-D trajectories from paired stock series.
    let raw = stock_corpus(&StockConfig {
        sequences: 40,
        mean_len: 80,
        ..Default::default()
    });
    let mut store = MvStore::new();
    for i in (0..40).step_by(2) {
        let a = raw.get(warptree_core::sequence::SeqId(i)).values();
        let b = raw.get(warptree_core::sequence::SeqId(i + 1)).values();
        let n = a.len().min(b.len());
        let data: Vec<f64> = (0..n).flat_map(|j| [a[j], b[j]]).collect();
        store.push(MvSequence::new(2, data));
    }
    let grid = GridAlphabet::max_entropy(store.seqs(), 8).unwrap();
    let cat = Arc::new(store.encode(&grid));
    let tree = warptree_suffix::build_sparse(cat);
    let query = {
        let s = store.get(warptree_core::sequence::SeqId(3));
        MvSequence::new(2, (5..15).flat_map(|i| s.point(i).to_vec()).collect())
    };
    let params = SearchParams::with_epsilon(10.0);
    let mut g = c.benchmark_group("multivariate");
    g.sample_size(20);
    g.bench_function("mv_sim_search_2d", |b| {
        b.iter(|| {
            black_box(mv_sim_search(
                &tree,
                &grid,
                &store,
                black_box(&query),
                &params,
            ))
        })
    });
    g.finish();
}

fn bench_path_and_append(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 2,
        mean_len: 256,
        ..Default::default()
    });
    let a = store.get(warptree_core::sequence::SeqId(0)).values();
    let b = store.get(warptree_core::sequence::SeqId(1)).values();
    let mut g = c.benchmark_group("alignment");
    g.bench_function("dtw_with_path_256", |bch| {
        bch.iter(|| black_box(dtw_with_path(black_box(a), black_box(b))))
    });
    g.finish();

    // Append throughput: add 4 sequences to a 40-sequence index.
    let base = stock_corpus(&StockConfig {
        sequences: 40,
        mean_len: 60,
        ..Default::default()
    });
    let extra = stock_corpus(&StockConfig {
        sequences: 4,
        mean_len: 60,
        seed: 99,
        ..Default::default()
    });
    let alphabet = warptree_core::categorize::Alphabet::max_entropy(&base, 20).unwrap();
    let mut g = c.benchmark_group("append");
    g.sample_size(10);
    g.bench_function("append_4_to_40", |bch| {
        bch.iter_with_setup(
            || {
                let dir = std::env::temp_dir().join(format!(
                    "warptree-bench-append-{}-{}",
                    std::process::id(),
                    rand::random::<u64>()
                ));
                std::fs::create_dir_all(&dir).unwrap();
                let cat = Arc::new(alphabet.encode_store(&base));
                warptree_disk::save_corpus(&base, &alphabet, &dir.join("corpus.wc")).unwrap();
                let tree = warptree_suffix::build_sparse(cat);
                warptree_disk::write_tree(&tree, &dir.join("index.wt")).unwrap();
                dir
            },
            |dir| {
                black_box(warptree_disk::append_to_index_dir(&dir, &extra).unwrap());
                std::fs::remove_dir_all(&dir).unwrap();
            },
        )
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_knn,
    bench_multivariate,
    bench_path_and_append,
    bench_applications
);
criterion_main!(benches);

fn bench_applications(c: &mut Criterion) {
    use warptree_core::cluster::cluster_matches;
    use warptree_core::predict::{forecast, Weighting};

    let store = stock_corpus(&StockConfig {
        sequences: 80,
        mean_len: 100,
        ..Default::default()
    });
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 40);
    let q = store
        .get(warptree_core::sequence::SeqId(5))
        .subseq(20, 12)
        .to_vec();
    let params = SearchParams::with_epsilon(8.0);
    let (answers, _) = run_query(
        &built.tree,
        &built.alphabet,
        &store,
        &QueryRequest::threshold_params(&q, params),
    )
    .unwrap();
    let answers = answers.into_answer_set();
    let episodes: Vec<warptree_core::search::Match> =
        answers.non_overlapping().into_iter().take(30).collect();

    let mut g = c.benchmark_group("applications");
    g.sample_size(20);
    g.bench_function("cluster_30_episodes_k3", |b| {
        b.iter(|| black_box(cluster_matches(&store, &episodes, 3, 20)))
    });
    g.bench_function("forecast_30_episodes_h5", |b| {
        b.iter(|| {
            black_box(forecast(
                &store,
                &episodes,
                5,
                Weighting::InverseDistance { lambda: 0.5 },
            ))
        })
    });
    g.finish();

    // Motif mining over a full tree.
    let full = build_index(&store, IndexKind::Full, Method::Me, 12);
    let mut g = c.benchmark_group("mining");
    g.sample_size(10);
    g.bench_function("top_motifs_len8_k10", |b| {
        b.iter(|| black_box(warptree_suffix::top_motifs(&full.tree, 8, 10)))
    });
    g.bench_function("longest_repeated", |b| {
        b.iter(|| black_box(warptree_suffix::longest_repeated(&full.tree, 2)))
    });
    g.finish();
}
