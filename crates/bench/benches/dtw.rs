//! Micro-benchmarks of the time-warping distance kernel (paper §3):
//! full table vs. Theorem-1 early abandoning vs. Sakoe–Chiba banding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use warptree_core::dtw::{dtw, dtw_early_abandon, dtw_windowed};
use warptree_data::{artificial_corpus, ArtificialConfig};

fn inputs(len: usize) -> (Vec<f64>, Vec<f64>) {
    let store = artificial_corpus(&ArtificialConfig {
        sequences: 2,
        len,
        seed: 42,
        ..Default::default()
    });
    let a = store
        .get(warptree_core::sequence::SeqId(0))
        .values()
        .to_vec();
    let b = store
        .get(warptree_core::sequence::SeqId(1))
        .values()
        .to_vec();
    (a, b)
}

fn bench_dtw(c: &mut Criterion) {
    let mut g = c.benchmark_group("dtw");
    for len in [32usize, 128, 512] {
        let (a, b) = inputs(len);
        g.bench_with_input(BenchmarkId::new("full", len), &len, |bch, _| {
            bch.iter(|| black_box(dtw(black_box(&a), black_box(&b))))
        });
        g.bench_with_input(
            BenchmarkId::new("early_abandon_tight", len),
            &len,
            |bch, _| {
                // A tight ε abandons almost immediately.
                bch.iter(|| black_box(dtw_early_abandon(black_box(&a), black_box(&b), 1.0)))
            },
        );
        g.bench_with_input(BenchmarkId::new("windowed_w8", len), &len, |bch, _| {
            bch.iter(|| black_box(dtw_windowed(black_box(&a), black_box(&b), 8)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
