//! Index construction benchmarks (Table 1's build side): Ukkonen vs.
//! naive insertion, sparse construction, and disk serialization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use warptree_bench::{build_index, IndexKind, Method};
use warptree_core::categorize::Alphabet;
use warptree_data::{stock_corpus, StockConfig};
use warptree_suffix::{build_full, build_full_naive, build_sparse};

fn bench_build(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 60,
        mean_len: 80,
        ..Default::default()
    });
    let alphabet = Alphabet::max_entropy(&store, 20).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));

    let mut g = c.benchmark_group("build");
    g.sample_size(20);
    g.bench_function("ukkonen_full", |b| {
        b.iter(|| black_box(build_full(cat.clone())))
    });
    g.bench_function("naive_full", |b| {
        b.iter(|| black_box(build_full_naive(cat.clone())))
    });
    g.bench_function("sparse", |b| {
        b.iter(|| black_box(build_sparse(cat.clone())))
    });
    g.finish();

    let mut g = c.benchmark_group("categorize");
    for cats in [10usize, 80] {
        g.bench_with_input(BenchmarkId::new("equal_length", cats), &cats, |b, &cats| {
            b.iter(|| black_box(Alphabet::equal_length(&store, cats).unwrap()))
        });
        g.bench_with_input(BenchmarkId::new("max_entropy", cats), &cats, |b, &cats| {
            b.iter(|| black_box(Alphabet::max_entropy(&store, cats).unwrap()))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("serialize");
    g.sample_size(20);
    let built = build_index(&store, IndexKind::Sparse, Method::Me, 20);
    let path = std::env::temp_dir().join(format!("warptree-bench-ser-{}.wt", std::process::id()));
    g.bench_function("write_tree", |b| {
        b.iter(|| black_box(warptree_disk::write_tree(&built.tree, &path).unwrap()))
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
