//! Query benchmarks covering Tables 2–3 in micro form: SeqScan vs. the
//! three SimSearch variants at two thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use warptree_bench::{build_index, IndexKind, Method};
use warptree_core::search::{
    run_query, seq_scan, QueryRequest, SearchParams, SearchStats, SeqScanMode,
};
use warptree_data::{stock_corpus, QueryConfig, QueryWorkload, StockConfig};

fn bench_query(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 60,
        mean_len: 80,
        ..Default::default()
    });
    let queries = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 1,
            mean_len: 16,
            len_jitter: 0,
            noise_std: 0.5,
            ..Default::default()
        },
    );
    let q = &queries.queries()[0].values;

    let exact = build_index(&store, IndexKind::Exact, Method::El, 0);
    let full = build_index(&store, IndexKind::Full, Method::Me, 40);
    let sparse = build_index(&store, IndexKind::Sparse, Method::Me, 40);

    for eps in [5.0f64, 20.0] {
        let params = SearchParams::with_epsilon(eps);
        let mut g = c.benchmark_group(format!("query_eps{eps}"));
        g.sample_size(20);
        g.bench_with_input(
            BenchmarkId::new("seqscan_full", eps as u64),
            &eps,
            |b, _| {
                b.iter(|| {
                    let mut stats = SearchStats::default();
                    black_box(seq_scan(
                        &store,
                        black_box(q),
                        &params,
                        SeqScanMode::Full,
                        &mut stats,
                    ))
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("seqscan_early_abandon", eps as u64),
            &eps,
            |b, _| {
                b.iter(|| {
                    let mut stats = SearchStats::default();
                    black_box(seq_scan(
                        &store,
                        black_box(q),
                        &params,
                        SeqScanMode::EarlyAbandon,
                        &mut stats,
                    ))
                })
            },
        );
        for (name, built) in [
            ("simsearch_st", &exact),
            ("simsearch_st_c", &full),
            ("simsearch_sst_c", &sparse),
        ] {
            g.bench_with_input(BenchmarkId::new(name, eps as u64), &eps, |b, _| {
                let req = QueryRequest::threshold_params(q, params.clone());
                b.iter(|| {
                    black_box(
                        run_query(&built.tree, &built.alphabet, &store, black_box(&req)).unwrap(),
                    )
                })
            });
        }
        g.finish();
    }
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
