//! Disk-layer benchmarks: pager reads (cold/warm), node decoding, tree
//! merge throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use warptree_core::categorize::Alphabet;
use warptree_core::search::IndexBackend;
use warptree_data::{stock_corpus, StockConfig};
use warptree_disk::{merge_trees, DiskTree, PagedReader, PagedWriter};
use warptree_suffix::build_full_range;

fn bench_pager(c: &mut Criterion) {
    let path =
        std::env::temp_dir().join(format!("warptree-bench-pager-{}.dat", std::process::id()));
    let data: Vec<u8> = (0..1_000_000u32).map(|i| (i % 251) as u8).collect();
    let mut w = PagedWriter::create(&path).unwrap();
    w.write(&data).unwrap();
    w.finish(&[]).unwrap();

    let mut g = c.benchmark_group("pager");
    g.bench_function("warm_random_reads", |b| {
        let r = PagedReader::open(&path, 256).unwrap();
        let mut buf = [0u8; 64];
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos * 1103515245 + 12345) % 999_000;
            r.read_exact_at(black_box(pos), &mut buf).unwrap();
            black_box(buf[0])
        })
    });
    g.bench_function("cold_random_reads_tiny_cache", |b| {
        let r = PagedReader::open(&path, 2).unwrap();
        let mut buf = [0u8; 64];
        let mut pos = 0u64;
        b.iter(|| {
            pos = (pos * 1103515245 + 12345) % 999_000;
            r.read_exact_at(black_box(pos), &mut buf).unwrap();
            black_box(buf[0])
        })
    });
    g.finish();
    std::fs::remove_file(&path).ok();
}

fn bench_merge(c: &mut Criterion) {
    let store = stock_corpus(&StockConfig {
        sequences: 40,
        mean_len: 60,
        ..Default::default()
    });
    let alphabet = Alphabet::max_entropy(&store, 20).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let dir = std::env::temp_dir().join(format!("warptree-bench-merge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let t1 = build_full_range(cat.clone(), 0..20);
    let t2 = build_full_range(cat.clone(), 20..40);
    let (p1, p2) = (dir.join("a.wt"), dir.join("b.wt"));
    warptree_disk::write_tree(&t1, &p1).unwrap();
    warptree_disk::write_tree(&t2, &p2).unwrap();
    let da = DiskTree::open(&p1, cat.clone(), 64, 512).unwrap();
    let db = DiskTree::open(&p2, cat.clone(), 64, 512).unwrap();

    let mut g = c.benchmark_group("disk_tree");
    g.sample_size(10);
    let out = dir.join("merged.wt");
    g.bench_function("binary_merge", |b| {
        b.iter(|| black_box(merge_trees(&da, &db, &cat, &out).unwrap()))
    });
    g.bench_function("full_traversal", |b| {
        let merged = DiskTree::open(&out, cat.clone(), 64, 512).unwrap();
        b.iter(|| {
            let mut n = 0u64;
            merged.for_each_suffix_below(merged.root(), &mut |_, _, _| n += 1);
            black_box(n)
        })
    });
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_pager, bench_merge);
criterion_main!(benches);
