#![warn(missing_docs)]

//! # warptree-server
//!
//! Concurrent query serving for the warptree index — the paper's
//! economics (one shared suffix-tree index amortized over many
//! `D_tw-lb`-filtered queries, §5–§6) realized as a long-running
//! process instead of a per-invocation CLI.
//!
//! Everything here is `std`-only (the workspace builds offline):
//!
//! * [`json`] — a minimal JSON value parser for the wire protocol.
//! * [`proto`] — length-prefixed JSON framing, request parsing and
//!   response/error encoding (typed error codes, e.g. `overloaded`).
//! * [`pool`] — a fixed-size worker thread pool with a **bounded**
//!   request queue: admission control instead of unbounded latency.
//! * [`snapshot`] — an `Arc`-swapped immutable
//!   [`DirSnapshot`](warptree_disk::DirSnapshot) plus the hot-reload
//!   watcher that polls the commit `MANIFEST` and swaps generations
//!   without dropping requests.
//! * [`server`] — the TCP accept loop, per-request deadlines, metrics,
//!   per-query tracing, the slow-query ring, and graceful drain on
//!   shutdown.
//! * [`http`] — the plain-HTTP `GET /metrics` Prometheus exposition
//!   endpoint (enabled by `ServerConfig::metrics_addr`).
//! * [`client`] — a blocking protocol client with jittered-backoff
//!   retries for `overloaded` rejections and transport failures.
//! * [`bench`] — an open/closed-loop load generator producing the
//!   committed `BENCH_serve.json` throughput/latency report.
//! * [`chaos`] — a deterministic fault-injecting stream wrapper
//!   (torn/dropped/stalled frames) for the chaos test harness.
//! * [`signal`] — SIGINT/SIGTERM → shutdown-flag plumbing.
//!
//! ## Serving contract
//!
//! Queries run through the typed [`QueryRequest`] API
//! (`warptree_core::search`), validated before execution, so malformed
//! input returns a typed error frame and can never kill a worker.
//! Every query executes against one `Arc<DirSnapshot>` taken at
//! dispatch, so a mid-traffic generation commit is invisible to
//! in-flight requests: they finish on the old snapshot while new
//! requests see the new one; the old generation is freed when its last
//! request completes. `ingest` frames (protocol version 2) append tail
//! segments under a writer mutex shared with the background compaction
//! worker and republish the snapshot before acking, so a connection
//! reads its own writes.
//!
//! [`QueryRequest`]: warptree_core::search::QueryRequest

pub mod bench;
pub mod chaos;
pub mod client;
pub mod http;
pub mod json;
pub mod pool;
pub mod proto;
pub mod server;
pub mod signal;
pub mod snapshot;

pub use bench::{BenchConfig, BenchReport, LoopMode};
pub use chaos::{ChaosConfig, ChaosStream};
pub use client::{Client, ClientError, RetryPolicy, ShardConn};
pub use json::Json;
pub use pool::{SubmitError, WorkerPool};
pub use proto::{ErrorCode, ParseError, Request, MAX_FRAME, MIN_PROTO_VERSION, PROTO_VERSION};
pub use server::{Server, ServerConfig, ServerHandle};
pub use snapshot::{ReloadWatcher, SnapshotCell};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_contract_is_send_sync() {
        // The server shares these across the accept loop, connection
        // threads, workers and the reload watcher; assert the contract
        // at compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotCell>();
        assert_send_sync::<WorkerPool>();
        assert_send_sync::<warptree_disk::DirSnapshot>();
        assert_send_sync::<warptree_obs::MetricsRegistry>();
        assert_send_sync::<warptree_core::search::SearchMetrics>();
    }
}
