//! Wire protocol: length-prefixed JSON frames, request parsing, and
//! response encoding.
//!
//! Every message — in both directions — is one *frame*: a 4-byte
//! little-endian `u32` byte length followed by that many bytes of UTF-8
//! JSON. Frames larger than [`MAX_FRAME`] are rejected before any
//! allocation, so a hostile length prefix cannot balloon memory.
//!
//! Requests are objects with an `"op"` discriminator:
//!
//! ```json
//! {"op":"search","query":[20.0,21.0],"epsilon":1.5,"window":4}
//! {"op":"knn","query":[20.0,21.0],"k":5}
//! {"op":"batch","queries":[[1.0],[2.0]],"epsilon":0.5}
//! {"op":"explain","query":[20.0,21.0],"epsilon":1.5}
//! {"op":"ingest","version":2,"sequences":[[1.0,2.0],[3.0]]}
//! {"op":"info"}  {"op":"health"}  {"op":"stats"}  {"op":"shutdown"}
//! {"op":"slowlog","version":4}  {"op":"metrics","version":4}
//! ```
//!
//! Every query op also accepts an optional `"parallelism"` (worker
//! subthreads for one request, clamped server-side to the serve
//! `--threads` cap; results are byte-identical at every value), and —
//! at protocol version 4 — `"trace":true` / `"trace_id":"…"` to
//! request the query's span tree in the response, plus an optional
//! `"backend":"tree"|"esa"` pin that makes the server answer only from
//! an index of that family (any other fails with the typed
//! `unsupported_backend` code instead of silently answering from a
//! different index family).
//!
//! Requests may carry an optional integer `"version"` (absent =
//! [`MIN_PROTO_VERSION`]); a version this server does not speak — or an
//! op needing a newer version than declared, like `ingest` — fails with
//! the typed `unsupported_version` code. Responses stamp the server's
//! [`PROTO_VERSION`].
//!
//! Responses always carry `"ok"` and `"version"`:
//! `{"ok":true,"version":2,"op":…,…}` on success, and on failure a
//! typed error the client can branch on:
//!
//! ```json
//! {"ok":false,"version":2,"error":{"code":"overloaded","message":"…"}}
//! ```
//!
//! The error codes ([`ErrorCode`]) are part of the contract: admission
//! control distinguishes `overloaded` (bounded queue full — retry with
//! backoff) from `deadline_exceeded` (accepted but expired in queue)
//! from `bad_request` (never retry) from `result_too_large` (answer
//! exceeds the frame cap — narrow the search) from `shutting_down`.

use std::io::{self, Read, Write};

use warptree_core::error::CoreError;
use warptree_core::search::{BackendKind, KnnParams, Match, SearchParams};
use warptree_obs::json::{escape, num};

use crate::json::{self, Json};

/// Maximum frame payload accepted or produced: 4 MiB. Generous for the
/// workloads in the paper (a length-3000 query is 60 KB of JSON) while
/// bounding per-connection memory.
pub const MAX_FRAME: u32 = 4 << 20;

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. Returns `Ok(None)` on a clean EOF
/// at a frame boundary (the peer closed the connection); propagates
/// timeouts and mid-frame EOFs as errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    // A clean close arrives as EOF on the first length byte.
    match r.read(&mut len_buf[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(e),
    }
    r.read_exact(&mut len_buf[1..])?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// What [`read_frame_idle_aware`] observed on the stream.
#[derive(Debug)]
pub enum FrameEvent {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean EOF at a frame boundary — the peer closed the connection.
    Closed,
    /// The read timed out with **zero** bytes of the next frame
    /// consumed. The stream is still at a frame boundary; the caller
    /// may poll shutdown flags and retry.
    Idle,
}

/// [`read_frame`] for a reader with a read timeout (e.g. a `TcpStream`
/// with `set_read_timeout`).
///
/// `WouldBlock`/`TimedOut` before the first byte of a frame is
/// reported as [`FrameEvent::Idle`] — nothing has been consumed, so
/// the caller can safely loop. Once a frame has begun, timeouts are
/// *retried* instead of surfaced: a plain `read_exact` would discard
/// whatever partial length/payload bytes it had buffered, leaving the
/// next read to interpret mid-frame bytes as a fresh length prefix and
/// permanently desynchronizing the connection. A slow client (a gap
/// longer than the timeout inside a multi-chunk frame) is therefore
/// fine; only `stall_limit` *consecutive* zero-progress timeouts
/// mid-frame fail the read (`TimedOut`), bounding how long a dead or
/// malicious peer can pin the reader inside one frame.
pub fn read_frame_idle_aware(r: &mut impl Read, stall_limit: u32) -> io::Result<FrameEvent> {
    let mut len_buf = [0u8; 4];
    loop {
        match r.read(&mut len_buf[..1]) {
            Ok(0) => return Ok(FrameEvent::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(FrameEvent::Idle)
            }
            Err(e) => return Err(e),
        }
    }
    read_full(r, &mut len_buf[1..], stall_limit)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    read_full(r, &mut payload, stall_limit)?;
    Ok(FrameEvent::Frame(payload))
}

/// `read_exact` that survives read timeouts: tracks its own offset so
/// partially read bytes are never discarded, retrying on
/// `WouldBlock`/`TimedOut` up to `stall_limit` consecutive
/// zero-progress reads (the counter resets whenever bytes arrive).
fn read_full(r: &mut impl Read, buf: &mut [u8], stall_limit: u32) -> io::Result<()> {
    let mut off = 0;
    let mut stalls = 0u32;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ))
            }
            Ok(n) => {
                off += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls >= stall_limit {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no progress mid-frame for too long",
                    ));
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// Typed protocol error codes — the shared wire vocabulary defined in
/// [`warptree_core::error::ErrorCode`], re-exported so every existing
/// `proto::ErrorCode` path keeps working. The string form
/// ([`ErrorCode::as_str`]) is the wire contract, spelled out in exactly
/// one place (the core crate).
pub use warptree_core::error::ErrorCode;

/// The protocol version this build speaks (and stamps on every
/// response). Version history:
///
/// * **1** — the original op set (`search`, `knn`, `batch`, `explain`,
///   `info`, `health`, `stats`, `shutdown`).
/// * **2** — adds the `ingest` op (online append into tail segments)
///   and the `"version"` field on requests and responses.
/// * **3** — degraded-mode serving: query responses may carry
///   `"partial":true` plus a `"coverage"` object when quarantined
///   segments were excluded, and `health` reports a `"degraded"`
///   status. Clients on v1/v2 receive the typed
///   `partial_result_unsupported` error instead of a silently
///   incomplete answer.
/// * **4** — per-query tracing and exposition: query ops accept
///   `"trace":true` (return the span tree) and `"trace_id":"…"`
///   (caller-chosen correlation id); query responses carry a
///   `"timings":{"queue_ns":…,"service_ns":…}` object and, when traced,
///   a `"trace"` block. Adds the `slowlog` and `metrics` control ops.
pub const PROTO_VERSION: u32 = 4;

/// The oldest protocol version still accepted. Requests carrying no
/// `"version"` field are treated as this version.
pub const MIN_PROTO_VERSION: u32 = 1;

/// A request parse failure: a wire [`ErrorCode`] (almost always
/// `bad_request`; `unsupported_version` for version negotiation
/// failures) plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// The typed code the error frame will carry.
    pub code: ErrorCode,
    /// The human-readable message.
    pub message: String,
}

impl From<String> for ParseError {
    fn from(message: String) -> Self {
        ParseError {
            code: ErrorCode::BadRequest,
            message,
        }
    }
}

impl From<&str> for ParseError {
    fn from(message: &str) -> Self {
        ParseError::from(message.to_string())
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// ε-threshold similarity search.
    Search {
        /// The query subsequence.
        query: Vec<f64>,
        /// Search parameters (ε, window, length bounds).
        params: SearchParams,
    },
    /// k-nearest-neighbour search via ε expansion.
    Knn {
        /// The query subsequence.
        query: Vec<f64>,
        /// k-NN parameters.
        params: KnnParams,
    },
    /// Several threshold searches answered in one response — the
    /// pipelined path that shares one metrics bundle server-side.
    Batch {
        /// The query subsequences.
        queries: Vec<Vec<f64>>,
        /// Parameters applied to every query.
        params: SearchParams,
    },
    /// A threshold search that also returns its cost counters.
    Explain {
        /// The query subsequence.
        query: Vec<f64>,
        /// Search parameters.
        params: SearchParams,
    },
    /// Index/corpus metadata.
    Info,
    /// Liveness probe.
    Health,
    /// Process metrics snapshot.
    Stats,
    /// The slow-query ring: recent traced/slow queries, newest first
    /// (protocol version 4).
    Slowlog,
    /// The full metrics registry in Prometheus text exposition format
    /// (protocol version 4).
    Metrics,
    /// Ask the server to drain and exit.
    Shutdown,
    /// Append sequences to the served index as a new tail segment
    /// (protocol version 2). The commit is crash-safe and the new
    /// generation is swapped in before the response is sent, so a
    /// follow-up query on the same connection sees the ingested data.
    Ingest {
        /// The sequences to append, one value array each.
        sequences: Vec<Vec<f64>>,
    },
    /// Occupy a worker for `ms` milliseconds (test-only; parsed only
    /// when debug ops are enabled). Deterministically fills the queue
    /// for overload and deadline tests.
    DebugSleep {
        /// How long the worker sleeps.
        ms: u64,
    },
}

impl Request {
    /// `true` for ops answered inline on the connection thread —
    /// cheap, never queued, usable even when the pool is saturated
    /// (a health check that 503s under load is useless).
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Request::Info
                | Request::Health
                | Request::Stats
                | Request::Slowlog
                | Request::Metrics
                | Request::Shutdown
        )
    }

    /// The op name as it appears on the wire — used for span/slowlog
    /// labeling, so a trace's `"op"` attribute matches what the client
    /// sent.
    pub fn op_label(&self) -> &'static str {
        match self {
            Request::Search { .. } => "search",
            Request::Knn { .. } => "knn",
            Request::Batch { .. } => "batch",
            Request::Explain { .. } => "explain",
            Request::Ingest { .. } => "ingest",
            Request::Info => "info",
            Request::Health => "health",
            Request::Stats => "stats",
            Request::Slowlog => "slowlog",
            Request::Metrics => "metrics",
            Request::Shutdown => "shutdown",
            Request::DebugSleep { .. } => "debug_sleep",
        }
    }

    /// Parses a frame payload. `allow_debug` gates the test-only ops.
    ///
    /// A request may carry an optional integer `"version"`; absent
    /// means [`MIN_PROTO_VERSION`]. Versions outside
    /// `MIN_PROTO_VERSION..=PROTO_VERSION` — and ops requiring a newer
    /// version than the request declared — fail with the typed
    /// `unsupported_version` code instead of plain `bad_request`, so
    /// clients can distinguish "speak older" from "malformed".
    pub fn parse(payload: &[u8], allow_debug: bool) -> Result<Request, ParseError> {
        Self::parse_versioned(payload, allow_debug).map(|(req, _)| req)
    }

    /// [`parse`](Request::parse) that also returns the protocol version
    /// the request negotiated (absent = [`MIN_PROTO_VERSION`]). The
    /// server needs the version to decide whether a degraded (partial)
    /// response can be expressed or must fail with
    /// `partial_result_unsupported`.
    pub fn parse_versioned(
        payload: &[u8],
        allow_debug: bool,
    ) -> Result<(Request, u32), ParseError> {
        Self::parse_full(payload, allow_debug).map(|(req, v, _)| (req, v))
    }

    /// The complete parse: request, negotiated version, and the
    /// protocol-version-4 [`TraceOpts`]. Requesting a trace (or
    /// supplying a `trace_id`) below version 4 is an
    /// `unsupported_version` error, so old clients can never receive a
    /// response shape they do not expect.
    pub fn parse_full(
        payload: &[u8],
        allow_debug: bool,
    ) -> Result<(Request, u32, TraceOpts), ParseError> {
        let text = std::str::from_utf8(payload).map_err(|_| "frame is not UTF-8".to_string())?;
        let v = json::parse(text)?;
        let version = match v.get("version") {
            None | Some(Json::Null) => MIN_PROTO_VERSION,
            Some(x) => x
                .as_u64()
                .filter(|n| *n <= u32::MAX as u64)
                .ok_or("\"version\" must be an integer")? as u32,
        };
        if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
            return Err(ParseError {
                code: ErrorCode::UnsupportedVersion,
                message: format!(
                    "protocol version {version} is not supported (this server speaks {MIN_PROTO_VERSION}..={PROTO_VERSION})"
                ),
            });
        }
        let op = v
            .get("op")
            .and_then(Json::as_str)
            .ok_or("missing \"op\" field")?;
        if op == "ingest" && version < 2 {
            return Err(ParseError {
                code: ErrorCode::UnsupportedVersion,
                message: "op \"ingest\" requires protocol version 2; send \"version\":2"
                    .to_string(),
            });
        }
        if (op == "slowlog" || op == "metrics") && version < 4 {
            return Err(ParseError {
                code: ErrorCode::UnsupportedVersion,
                message: format!("op \"{op}\" requires protocol version 4; send \"version\":4"),
            });
        }
        let trace = TraceOpts {
            wanted: match v.get("trace") {
                None | Some(Json::Null) => false,
                Some(x) => x.as_bool().ok_or("\"trace\" must be a boolean")?,
            },
            trace_id: match v.get("trace_id") {
                None | Some(Json::Null) => None,
                Some(x) => {
                    let id = x.as_str().ok_or("\"trace_id\" must be a string")?;
                    if id.is_empty() || id.len() > 128 {
                        return Err("\"trace_id\" must be 1..=128 bytes".into());
                    }
                    Some(id.to_string())
                }
            },
        };
        if (trace.wanted || trace.trace_id.is_some()) && version < 4 {
            return Err(ParseError {
                code: ErrorCode::UnsupportedVersion,
                message: "per-query tracing requires protocol version 4; send \"version\":4"
                    .to_string(),
            });
        }
        let req: Result<Request, ParseError> = match op {
            "search" => Ok(Request::Search {
                query: query_field(&v, "query")?,
                params: search_params(&v)?,
            }),
            "knn" => {
                let k = v
                    .get("k")
                    .and_then(Json::as_u64)
                    .ok_or("knn requires an integer \"k\"")? as usize;
                let mut params = KnnParams::new(k);
                if let Some(e) = v.get("initial_epsilon") {
                    params.initial_epsilon =
                        e.as_f64().ok_or("\"initial_epsilon\" must be a number")?;
                }
                if let Some(g) = v.get("growth") {
                    params.growth = g.as_f64().ok_or("\"growth\" must be a number")?;
                }
                if let Some(r) = v.get("max_rounds") {
                    params.max_rounds =
                        r.as_u64().ok_or("\"max_rounds\" must be an integer")? as usize;
                }
                if let Some(w) = opt_u32(&v, "window")? {
                    params.window = Some(w);
                }
                if let Some(overlap) = v.get("allow_overlaps") {
                    params.non_overlapping = !overlap
                        .as_bool()
                        .ok_or("\"allow_overlaps\" must be a boolean")?;
                }
                if let Some(t) = opt_u32(&v, "parallelism")? {
                    params.threads = t;
                }
                if let Some(c) = v.get("cascade") {
                    params.cascade = c.as_bool().ok_or("\"cascade\" must be a boolean")?;
                }
                params.backend = opt_backend(&v)?;
                Ok(Request::Knn {
                    query: query_field(&v, "query")?,
                    params,
                })
            }
            "batch" => {
                let arr = v
                    .get("queries")
                    .and_then(Json::as_arr)
                    .ok_or("batch requires a \"queries\" array")?;
                let mut queries = Vec::with_capacity(arr.len());
                for (i, q) in arr.iter().enumerate() {
                    let vals = q
                        .as_arr()
                        .ok_or_else(|| format!("queries[{i}] is not an array"))?;
                    queries.push(numbers(vals, &format!("queries[{i}]"))?);
                }
                Ok(Request::Batch {
                    queries,
                    params: search_params(&v)?,
                })
            }
            "explain" => Ok(Request::Explain {
                query: query_field(&v, "query")?,
                params: search_params(&v)?,
            }),
            "ingest" => {
                let arr = v
                    .get("sequences")
                    .and_then(Json::as_arr)
                    .ok_or("ingest requires a \"sequences\" array")?;
                if arr.is_empty() {
                    return Err("\"sequences\" must not be empty".into());
                }
                let mut sequences = Vec::with_capacity(arr.len());
                for (i, s) in arr.iter().enumerate() {
                    let vals = s
                        .as_arr()
                        .ok_or_else(|| format!("sequences[{i}] is not an array"))?;
                    if vals.is_empty() {
                        return Err(format!("sequences[{i}] is empty").into());
                    }
                    sequences.push(numbers(vals, &format!("sequences[{i}]"))?);
                }
                Ok(Request::Ingest { sequences })
            }
            "info" => Ok(Request::Info),
            "health" => Ok(Request::Health),
            "stats" => Ok(Request::Stats),
            "slowlog" => Ok(Request::Slowlog),
            "metrics" => Ok(Request::Metrics),
            "shutdown" => Ok(Request::Shutdown),
            "debug_sleep" if allow_debug => Ok(Request::DebugSleep {
                ms: v
                    .get("ms")
                    .and_then(Json::as_u64)
                    .ok_or("debug_sleep requires an integer \"ms\"")?,
            }),
            other => Err(format!("unknown op {other:?}").into()),
        };
        let req = req?;
        if req.backend_pin().is_some() && version < 4 {
            return Err(ParseError {
                code: ErrorCode::UnsupportedVersion,
                message: "\"backend\" pinning requires protocol version 4; send \"version\":4"
                    .to_string(),
            });
        }
        Ok((req, version, trace))
    }

    /// The backend pin a query op carries, if any — `None` for control
    /// and write ops. The coordinator uses this to forward the pin
    /// verbatim to every shard.
    pub fn backend_pin(&self) -> Option<BackendKind> {
        match self {
            Request::Search { params, .. }
            | Request::Batch { params, .. }
            | Request::Explain { params, .. } => params.backend,
            Request::Knn { params, .. } => params.backend,
            _ => None,
        }
    }
}

/// Per-request tracing options (protocol version 4).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceOpts {
    /// The client asked for the span tree in the response
    /// (`"trace":true`). Sampled traces may be recorded server-side
    /// even when this is `false`.
    pub wanted: bool,
    /// Caller-supplied correlation id (`"trace_id"`); the server
    /// generates one when absent.
    pub trace_id: Option<String>,
}

fn numbers(arr: &[Json], what: &str) -> Result<Vec<f64>, String> {
    arr.iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("{what} holds a non-number"))
        })
        .collect()
}

fn query_field(v: &Json, key: &str) -> Result<Vec<f64>, String> {
    let arr = v
        .get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("missing \"{key}\" array"))?;
    numbers(arr, key)
}

fn opt_u32(v: &Json, key: &str) -> Result<Option<u32>, String> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(x) => {
            let n = x
                .as_u64()
                .filter(|n| *n <= u32::MAX as u64)
                .ok_or_else(|| format!("\"{key}\" must be a u32"))?;
            Ok(Some(n as u32))
        }
    }
}

fn search_params(v: &Json) -> Result<SearchParams, String> {
    let epsilon = v
        .get("epsilon")
        .and_then(Json::as_f64)
        .ok_or("missing numeric \"epsilon\"")?;
    let mut params = SearchParams::with_epsilon(epsilon);
    params.window = opt_u32(v, "window")?;
    params.max_len = opt_u32(v, "max_len")?;
    if let Some(m) = opt_u32(v, "min_len")? {
        params.min_len = m;
    }
    if let Some(t) = opt_u32(v, "parallelism")? {
        params.threads = t;
    }
    if let Some(c) = v.get("cascade") {
        params.cascade = c.as_bool().ok_or("\"cascade\" must be a boolean")?;
    }
    params.backend = opt_backend(v)?;
    Ok(params)
}

/// The optional `"backend"` pin: `"tree"` or `"esa"`. Unknown names are
/// a `bad_request` (the client asked for a family this build does not
/// know, which no retry against this server can fix).
fn opt_backend(v: &Json) -> Result<Option<BackendKind>, String> {
    match v.get("backend") {
        None | Some(Json::Null) => Ok(None),
        Some(x) => {
            let s = x.as_str().ok_or("\"backend\" must be a string")?;
            BackendKind::parse(s)
                .map(Some)
                .ok_or_else(|| format!("unknown backend {s:?} (expected \"tree\" or \"esa\")"))
        }
    }
}

/// Serializes matches as a canonical JSON array: sorted by occurrence
/// `(seq, start, len)`, distances rendered with
/// [`warptree_obs::json::num`]. Canonical ordering + shared formatter
/// is what makes server responses byte-comparable to locally computed
/// answer sets.
pub fn encode_matches(matches: &[Match]) -> String {
    let mut sorted: Vec<Match> = matches.to_vec();
    sorted.sort_by_key(|m| m.occ);
    encode_matches_ranked(&sorted)
}

/// Serializes matches **in the order given** — for rank-ordered
/// results (k-NN returns nearest first; sorting by occurrence would
/// destroy the ranking).
pub fn encode_matches_ranked(matches: &[Match]) -> String {
    let mut out = String::from("[");
    for (i, m) in matches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"start\":{},\"len\":{},\"dist\":{}}}",
            m.occ.seq.0,
            m.occ.start,
            m.occ.len,
            num(m.dist)
        ));
    }
    out.push(']');
    out
}

/// Serializes [`Coverage`] accounting as a response fragment:
/// `"partial":true,"coverage":{…}` (protocol version 3). The fraction
/// is rendered with the shared canonical number formatter so degraded
/// responses stay byte-comparable.
pub fn encode_coverage(c: &warptree_core::search::Coverage) -> String {
    format!(
        "\"partial\":{},\"coverage\":{{\"segments_total\":{},\"segments_answered\":{},\
         \"segments_quarantined\":{},\"suffixes_total\":{},\"suffixes_answered\":{},\
         \"fraction\":{}}}",
        c.is_partial(),
        c.segments_total,
        c.segments_answered,
        c.segments_quarantined,
        c.suffixes_total,
        c.suffixes_answered,
        num(c.fraction())
    )
}

/// Builds a success response:
/// `{"ok":true,"version":<PROTO_VERSION>,"op":<op>,<body…>}`. `body` is
/// a pre-rendered fragment of `"key":value` pairs (may be empty).
pub fn ok_response(op: &str, body: &str) -> String {
    if body.is_empty() {
        format!(
            "{{\"ok\":true,\"version\":{PROTO_VERSION},\"op\":\"{}\"}}",
            escape(op)
        )
    } else {
        format!(
            "{{\"ok\":true,\"version\":{PROTO_VERSION},\"op\":\"{}\",{}}}",
            escape(op),
            body
        )
    }
}

/// Builds a typed error response.
pub fn error_response(code: ErrorCode, message: &str) -> String {
    format!(
        "{{\"ok\":false,\"version\":{PROTO_VERSION},\"error\":{{\"code\":\"{}\",\"message\":\"{}\"}}}}",
        code.as_str(),
        escape(message)
    )
}

/// Maps a validation failure from the core search layer onto a wire
/// error via [`CoreError::code`] (every core error is the client's
/// fault, so this is always `bad_request`).
pub fn core_error_response(e: &CoreError) -> String {
    error_response(e.code(), &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::sequence::{Occurrence, SeqId};

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"op\":\"health\"}").unwrap();
        write_frame(&mut buf, b"second").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"op\":\"health\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"second");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    /// A reader that interleaves timeouts between single-byte reads —
    /// the worst case a slow network client presents.
    struct DribbleReader {
        data: Vec<u8>,
        pos: usize,
        /// Emit a timeout before every real byte when `true`.
        stall_between: bool,
        leading_stalls: u32,
    }

    impl io::Read for DribbleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.leading_stalls > 0 {
                self.leading_stalls -= 1;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"));
            }
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            if self.stall_between {
                self.leading_stalls = 1;
            }
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn idle_aware_reader_survives_mid_frame_timeouts() {
        // One frame delivered one byte at a time with a timeout before
        // every byte: read_frame would desync; the idle-aware reader
        // must reassemble the frame, then report the clean close.
        let mut framed = Vec::new();
        write_frame(&mut framed, b"{\"op\":\"health\"}").unwrap();
        let mut r = DribbleReader {
            data: framed,
            pos: 0,
            stall_between: true,
            leading_stalls: 1,
        };
        match read_frame_idle_aware(&mut r, 10).unwrap() {
            FrameEvent::Idle => {} // first stall: zero bytes consumed
            other => panic!("expected Idle, got {other:?}"),
        }
        match read_frame_idle_aware(&mut r, 10).unwrap() {
            FrameEvent::Frame(p) => assert_eq!(p, b"{\"op\":\"health\"}"),
            other => panic!("expected Frame, got {other:?}"),
        }
        // The reader stalls once more before EOF (still a frame
        // boundary → Idle), then reports the clean close.
        match read_frame_idle_aware(&mut r, 10).unwrap() {
            FrameEvent::Idle => {}
            other => panic!("expected Idle, got {other:?}"),
        }
        match read_frame_idle_aware(&mut r, 10).unwrap() {
            FrameEvent::Closed => {}
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn idle_aware_reader_bounds_mid_frame_stalls() {
        // A peer that sends one length byte then goes silent must not
        // pin the reader forever: the consecutive-stall limit trips.
        let mut r = DribbleReader {
            data: vec![7u8],
            pos: 0,
            stall_between: false,
            leading_stalls: 0,
        };
        // After the single byte, every read hits EOF → UnexpectedEof
        // (mid-frame close), not a silent desync.
        let err = read_frame_idle_aware(&mut r, 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // And a pure staller (no bytes after the first) trips TimedOut.
        struct OneByteThenStall(bool);
        impl io::Read for OneByteThenStall {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if !self.0 {
                    self.0 = true;
                    buf[0] = 7;
                    return Ok(1);
                }
                Err(io::Error::new(io::ErrorKind::WouldBlock, "stall"))
            }
        }
        let err = read_frame_idle_aware(&mut OneByteThenStall(false), 3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn parses_search_request() {
        let req = Request::parse(
            br#"{"op":"search","query":[1.0,2.0],"epsilon":0.5,"window":3,"min_len":2}"#,
            false,
        )
        .unwrap();
        match req {
            Request::Search { query, params } => {
                assert_eq!(query, vec![1.0, 2.0]);
                assert_eq!(params.epsilon, 0.5);
                assert_eq!(params.window, Some(3));
                assert_eq!(params.min_len, 2);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_knn_request_with_defaults() {
        let req = Request::parse(br#"{"op":"knn","query":[1.0],"k":3}"#, false).unwrap();
        match req {
            Request::Knn { params, .. } => {
                assert_eq!(params.k, 3);
                assert!(params.non_overlapping);
                assert_eq!(params.growth, 4.0);
            }
            other => panic!("wrong request: {other:?}"),
        }
    }

    #[test]
    fn parses_parallelism_knob() {
        let req = Request::parse(
            br#"{"op":"search","query":[1.0],"epsilon":0.5,"parallelism":4}"#,
            false,
        )
        .unwrap();
        match req {
            Request::Search { params, .. } => assert_eq!(params.threads, 4),
            other => panic!("wrong request: {other:?}"),
        }
        let req = Request::parse(
            br#"{"op":"knn","query":[1.0],"k":2,"parallelism":8}"#,
            false,
        )
        .unwrap();
        match req {
            Request::Knn { params, .. } => assert_eq!(params.threads, 8),
            other => panic!("wrong request: {other:?}"),
        }
        // Absent → sequential; non-integers are rejected.
        let req = Request::parse(br#"{"op":"search","query":[1.0],"epsilon":0.5}"#, false).unwrap();
        match req {
            Request::Search { params, .. } => assert_eq!(params.threads, 1),
            other => panic!("wrong request: {other:?}"),
        }
        assert!(Request::parse(
            br#"{"op":"search","query":[1.0],"epsilon":0.5,"parallelism":-2}"#,
            false
        )
        .is_err());
    }

    #[test]
    fn debug_ops_are_gated() {
        let frame = br#"{"op":"debug_sleep","ms":10}"#;
        assert!(Request::parse(frame, false).is_err());
        assert_eq!(
            Request::parse(frame, true).unwrap(),
            Request::DebugSleep { ms: 10 }
        );
    }

    #[test]
    fn control_ops_are_classified() {
        for (frame, control) in [
            (&br#"{"op":"health"}"#[..], true),
            (br#"{"op":"stats"}"#, true),
            (br#"{"op":"search","query":[1.0],"epsilon":1.0}"#, false),
        ] {
            assert_eq!(Request::parse(frame, false).unwrap().is_control(), control);
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            &b"not json"[..],
            br#"{"no_op":1}"#,
            br#"{"op":"teapot"}"#,
            br#"{"op":"search","query":"strings","epsilon":1.0}"#,
            br#"{"op":"search","query":[1.0]}"#,
            br#"{"op":"knn","query":[1.0]}"#,
            br#"{"op":"search","query":[1.0],"epsilon":1.0,"window":-1}"#,
        ] {
            assert!(Request::parse(bad, false).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn backend_pin_parses_and_is_version_gated() {
        // Pins parse into the params for every query op.
        for (frame, want) in [
            (
                &br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"backend":"esa"}"#[..],
                Some(BackendKind::Esa),
            ),
            (
                br#"{"op":"knn","version":4,"query":[1.0],"k":2,"backend":"tree"}"#,
                Some(BackendKind::Tree),
            ),
            (
                br#"{"op":"batch","version":4,"queries":[[1.0]],"epsilon":0.5,"backend":"esa"}"#,
                Some(BackendKind::Esa),
            ),
            (
                br#"{"op":"explain","version":4,"query":[1.0],"epsilon":0.5,"backend":"tree"}"#,
                Some(BackendKind::Tree),
            ),
            // Absent and null both mean "any backend".
            (
                br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5}"#,
                None,
            ),
            (
                br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"backend":null}"#,
                None,
            ),
        ] {
            let req = Request::parse(frame, false).unwrap();
            assert_eq!(req.backend_pin(), want, "{frame:?}");
        }
        // Unknown families and non-string values are plain bad requests.
        for frame in [
            &br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"backend":"btree"}"#[..],
            br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"backend":7}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{frame:?}");
        }
        // A pin below protocol version 4 is a typed version failure, so
        // a pinned request can never be silently served unpinned by a
        // newer server a v1 client did not expect to understand it.
        let err = Request::parse(
            br#"{"op":"search","query":[1.0],"epsilon":0.5,"backend":"esa"}"#,
            false,
        )
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        // Control ops carry no pin.
        assert_eq!(
            Request::parse(br#"{"op":"health"}"#, false)
                .unwrap()
                .backend_pin(),
            None
        );
    }

    #[test]
    fn matches_encode_canonically() {
        let m = |s: u32, p: u32, l: u32, d: f64| Match {
            occ: Occurrence::new(SeqId(s), p, l),
            dist: d,
        };
        // Deliberately unsorted input sorts by occurrence.
        let encoded = encode_matches(&[m(1, 0, 2, 1.5), m(0, 3, 2, 0.0)]);
        assert_eq!(
            encoded,
            r#"[{"seq":0,"start":3,"len":2,"dist":0},{"seq":1,"start":0,"len":2,"dist":1.5}]"#
        );
    }

    #[test]
    fn responses_have_stable_shape() {
        assert_eq!(
            ok_response("health", ""),
            r#"{"ok":true,"version":4,"op":"health"}"#
        );
        assert_eq!(
            ok_response("info", "\"sequences\":2"),
            r#"{"ok":true,"version":4,"op":"info","sequences":2}"#
        );
        let err = error_response(ErrorCode::Overloaded, "queue full");
        assert_eq!(
            err,
            r#"{"ok":false,"version":4,"error":{"code":"overloaded","message":"queue full"}}"#
        );
        let parsed = crate::json::parse(&err).unwrap();
        assert_eq!(parsed.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            parsed.get("version").and_then(Json::as_u64),
            Some(PROTO_VERSION as u64)
        );
    }

    #[test]
    fn version_negotiation() {
        // Every supported version parses; absent defaults to v1.
        for (frame, want) in [
            (&br#"{"op":"health"}"#[..], 1),
            (br#"{"op":"health","version":1}"#, 1),
            (br#"{"op":"health","version":2}"#, 2),
            (br#"{"op":"health","version":3}"#, 3),
            (br#"{"op":"health","version":4}"#, 4),
        ] {
            let (req, version) = Request::parse_versioned(frame, false).unwrap();
            assert_eq!(req, Request::Health);
            assert_eq!(version, want, "{frame:?}");
        }
        // Out-of-range versions get the typed unsupported_version code.
        for frame in [
            &br#"{"op":"health","version":0}"#[..],
            br#"{"op":"health","version":5}"#,
            br#"{"op":"health","version":99}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{frame:?}");
        }
        // Malformed version values are plain bad requests.
        let err = Request::parse(br#"{"op":"health","version":"two"}"#, false).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn trace_opts_and_v4_ops_are_version_gated() {
        // v4 query with tracing: opts surface through parse_full.
        let (req, version, trace) = Request::parse_full(
            br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"trace":true,"trace_id":"abc"}"#,
            false,
        )
        .unwrap();
        assert!(matches!(req, Request::Search { .. }));
        assert_eq!(version, 4);
        assert_eq!(
            trace,
            TraceOpts {
                wanted: true,
                trace_id: Some("abc".to_string())
            }
        );
        // Untraced requests carry the default opts.
        let (_, _, trace) = Request::parse_full(br#"{"op":"health"}"#, false).unwrap();
        assert_eq!(trace, TraceOpts::default());
        // Tracing below v4 — and the v4-only ops below v4 — are typed
        // unsupported_version failures.
        for frame in [
            &br#"{"op":"search","query":[1.0],"epsilon":0.5,"trace":true}"#[..],
            br#"{"op":"search","version":3,"query":[1.0],"epsilon":0.5,"trace_id":"x"}"#,
            br#"{"op":"slowlog"}"#,
            br#"{"op":"metrics","version":3}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{frame:?}");
        }
        // The v4 control ops parse and are control-classified.
        for (frame, want) in [
            (&br#"{"op":"slowlog","version":4}"#[..], Request::Slowlog),
            (br#"{"op":"metrics","version":4}"#, Request::Metrics),
        ] {
            let req = Request::parse(frame, false).unwrap();
            assert_eq!(req, want);
            assert!(req.is_control());
        }
        // Malformed trace fields are plain bad requests.
        for frame in [
            &br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"trace":"yes"}"#[..],
            br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"trace_id":7}"#,
            br#"{"op":"search","version":4,"query":[1.0],"epsilon":0.5,"trace_id":""}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{frame:?}");
        }
    }

    #[test]
    fn coverage_fragment_is_stable_and_parseable() {
        let c = warptree_core::search::Coverage {
            segments_total: 3,
            segments_answered: 2,
            segments_quarantined: 1,
            suffixes_total: 100,
            suffixes_answered: 75,
        };
        let frag = encode_coverage(&c);
        assert_eq!(
            frag,
            r#""partial":true,"coverage":{"segments_total":3,"segments_answered":2,"segments_quarantined":1,"suffixes_total":100,"suffixes_answered":75,"fraction":0.75}"#
        );
        let resp = ok_response("search", &format!("\"matches\":[],{frag}"));
        let parsed = crate::json::parse(&resp).unwrap();
        assert_eq!(parsed.get("partial").and_then(Json::as_bool), Some(true));
        let cov = parsed.get("coverage").unwrap();
        assert_eq!(
            cov.get("segments_quarantined").and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(cov.get("fraction").and_then(Json::as_f64), Some(0.75));
    }

    #[test]
    fn ingest_requires_version_2() {
        let ok = Request::parse(
            br#"{"op":"ingest","version":2,"sequences":[[1.0,2.0],[3.0]]}"#,
            false,
        )
        .unwrap();
        assert_eq!(
            ok,
            Request::Ingest {
                sequences: vec![vec![1.0, 2.0], vec![3.0]]
            }
        );
        assert!(!ok.is_control());
        // Without version 2 the op is refused with the typed code …
        for frame in [
            &br#"{"op":"ingest","sequences":[[1.0]]}"#[..],
            br#"{"op":"ingest","version":1,"sequences":[[1.0]]}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::UnsupportedVersion, "{frame:?}");
        }
        // … and malformed payloads are plain bad requests.
        for frame in [
            &br#"{"op":"ingest","version":2}"#[..],
            br#"{"op":"ingest","version":2,"sequences":[]}"#,
            br#"{"op":"ingest","version":2,"sequences":[[]]}"#,
            br#"{"op":"ingest","version":2,"sequences":[["x"]]}"#,
        ] {
            let err = Request::parse(frame, false).unwrap_err();
            assert_eq!(err.code, ErrorCode::BadRequest, "{frame:?}");
        }
    }
}
