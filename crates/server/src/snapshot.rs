//! The `Arc`-swapped index snapshot and its hot-reload watcher.
//!
//! All queries run against one immutable
//! [`DirSnapshot`](warptree_disk::DirSnapshot) behind an
//! [`Arc`]. A request **pins** the snapshot it starts with
//! ([`SnapshotCell::get`] clones the `Arc`), so the watcher can swap in
//! a newer generation at any moment without a torn read: in-flight
//! requests keep the old generation alive until they finish; the last
//! drop frees it. No request is ever rejected or delayed by a reload —
//! the swap is one `RwLock`-guarded pointer store.
//!
//! The watcher polls the index directory's commit manifest with
//! [`committed_generation_with`] (one small CRC-checked read, no
//! directory listing, and crucially **no recovery sweep** — a
//! concurrent writer's staged files must survive, see
//! [`warptree_disk::snapshot`]). When the committed generation moves,
//! it opens the new generation *off to the side* and swaps it in only
//! after the open fully succeeds; an interrupted or failing commit
//! leaves the server on the old generation, serving uninterrupted.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use warptree_disk::{committed_generation_with, open_dir_snapshot_with, DirSnapshot, Vfs};
use warptree_obs::MetricsRegistry;

/// Wires a freshly opened snapshot into the server's metrics registry:
/// the base tree and every live segment meter their CRC failures into
/// the shared `disk.read_crc_fail` counter, and the degradation gauges
/// (`index.segments`, `server.quarantined_segments`) track the
/// published view. Called on every publish path — initial open, ingest
/// publish, scrub publish, and the reload watcher's swap — so the
/// gauges never go stale.
pub(crate) fn instrument_snapshot(snap: &DirSnapshot, registry: &MetricsRegistry) {
    snap.tree.instrument(registry);
    for seg in &snap.segments {
        seg.instrument(registry);
    }
    registry.set_gauge("index.segments", snap.segment_count() as f64);
    registry.set_gauge("server.quarantined_segments", snap.quarantined.len() as f64);
}

/// The shared, swappable handle to the current index snapshot.
pub struct SnapshotCell {
    current: RwLock<Arc<DirSnapshot>>,
}

impl SnapshotCell {
    /// Wraps an initial snapshot.
    pub fn new(snapshot: Arc<DirSnapshot>) -> Self {
        SnapshotCell {
            current: RwLock::new(snapshot),
        }
    }

    /// Pins and returns the current snapshot. Cheap (one `Arc` clone
    /// under a read lock); callers hold the result for the duration of
    /// one request.
    pub fn get(&self) -> Arc<DirSnapshot> {
        self.current.read().expect("snapshot lock").clone()
    }

    /// Atomically replaces the current snapshot, returning the previous
    /// one (which stays alive until its last in-flight user drops it).
    pub fn swap(&self, next: Arc<DirSnapshot>) -> Arc<DirSnapshot> {
        let mut slot = self.current.write().expect("snapshot lock");
        std::mem::replace(&mut *slot, next)
    }

    /// The generation currently being served.
    pub fn generation(&self) -> u64 {
        self.get().generation
    }
}

/// Polls the commit manifest and hot-swaps newer generations into a
/// [`SnapshotCell`].
pub struct ReloadWatcher {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// What the watcher meters: `server.reloads` / `server.reload_errors`
/// counters and the `server.generation` gauge.
struct WatcherCtx {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    cell: Arc<SnapshotCell>,
    registry: MetricsRegistry,
    cache_pages: usize,
    cache_nodes: usize,
}

impl ReloadWatcher {
    /// Spawns the watcher thread, polling every `interval`. The cache
    /// sizes are used for newly opened generations.
    pub fn spawn(
        vfs: Arc<dyn Vfs>,
        dir: PathBuf,
        cell: Arc<SnapshotCell>,
        registry: MetricsRegistry,
        interval: Duration,
        cache_pages: usize,
        cache_nodes: usize,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let ctx = WatcherCtx {
            vfs,
            dir,
            cell,
            registry,
            cache_pages,
            cache_nodes,
        };
        ctx.registry
            .set_gauge("server.generation", ctx.cell.generation() as f64);
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("warptree-reload".to_string())
            .spawn(move || watcher_loop(&ctx, &stop2, interval))
            .expect("spawn reload watcher");
        ReloadWatcher {
            stop,
            handle: Some(handle),
        }
    }

    /// Asks the watcher to exit and waits for it.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReloadWatcher {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn watcher_loop(ctx: &WatcherCtx, stop: &AtomicBool, interval: Duration) {
    // Sleep in small slices so stop() returns promptly even with a
    // long poll interval.
    let slice = interval
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(1));
    let mut elapsed = interval; // poll immediately on start
    while !stop.load(Ordering::SeqCst) {
        if elapsed < interval {
            std::thread::sleep(slice);
            elapsed += slice;
            continue;
        }
        elapsed = Duration::ZERO;
        poll_once(ctx);
    }
}

fn poll_once(ctx: &WatcherCtx) {
    let serving = ctx.cell.get().generation;
    let committed = match committed_generation_with(ctx.vfs.as_ref(), &ctx.dir) {
        Ok(g) => g,
        Err(_) => {
            // Transient (e.g. manifest mid-rename on a non-atomic
            // filesystem, or injected fault): keep serving, retry on
            // the next tick.
            ctx.registry.counter("server.reload_errors").incr();
            return;
        }
    };
    if committed == serving {
        return;
    }
    match open_dir_snapshot_with(ctx.vfs.as_ref(), &ctx.dir, ctx.cache_pages, ctx.cache_nodes) {
        Ok(next) => {
            let next_gen = next.generation;
            instrument_snapshot(&next, &ctx.registry);
            let prev = ctx.cell.swap(Arc::new(next));
            drop(prev); // frees now unless requests still pin it
            ctx.registry.counter("server.reloads").incr();
            ctx.registry.set_gauge("server.generation", next_gen as f64);
        }
        Err(_) => {
            // The generation we saw may already have been superseded
            // and its files unlinked — or the commit is broken. Either
            // way the old snapshot keeps serving; retry next tick.
            ctx.registry.counter("server.reload_errors").incr();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;
    use warptree_core::categorize::Alphabet;
    use warptree_core::sequence::SequenceStore;
    use warptree_disk::{build_dir_with, real_vfs, TreeKind};

    fn tmpdir(tag: &str) -> PathBuf {
        let p =
            std::env::temp_dir().join(format!("warptree-server-snap-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn build(dir: &Path, values: Vec<Vec<f64>>) {
        let store = SequenceStore::from_values(values);
        let alphabet = Alphabet::equal_length(&store, 4).unwrap();
        build_dir_with(
            real_vfs(),
            &store,
            &alphabet,
            TreeKind::Full,
            1,
            1,
            None,
            dir,
        )
        .unwrap();
    }

    #[test]
    fn swap_pins_old_generation_for_inflight_users() {
        let dir = tmpdir("pin");
        build(&dir, vec![vec![1.0, 2.0, 3.0]]);
        let snap1 = Arc::new(open_dir_snapshot_with(real_vfs().as_ref(), &dir, 4, 16).unwrap());
        let cell = SnapshotCell::new(snap1);
        let pinned = cell.get(); // an in-flight request
        build(&dir, vec![vec![9.0, 8.0]]);
        let snap2 = Arc::new(open_dir_snapshot_with(real_vfs().as_ref(), &dir, 4, 16).unwrap());
        let prev = cell.swap(snap2);
        assert_eq!(prev.generation, 1);
        assert_eq!(cell.generation(), 2);
        // The pinned snapshot still answers from generation 1's corpus.
        assert_eq!(pinned.generation, 1);
        assert_eq!(pinned.store.len(), 1);
        drop(prev);
        let weak = Arc::downgrade(&pinned);
        drop(pinned);
        assert!(
            weak.upgrade().is_none(),
            "old generation freed at last drop"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watcher_picks_up_new_generation() {
        let dir = tmpdir("watch");
        build(&dir, vec![vec![1.0, 2.0, 3.0]]);
        let vfs = real_vfs();
        let cell = Arc::new(SnapshotCell::new(Arc::new(
            open_dir_snapshot_with(vfs.as_ref(), &dir, 4, 16).unwrap(),
        )));
        let reg = MetricsRegistry::new();
        let watcher = ReloadWatcher::spawn(
            vfs,
            dir.clone(),
            cell.clone(),
            reg.clone(),
            Duration::from_millis(5),
            4,
            16,
        );
        build(&dir, vec![vec![4.0, 5.0], vec![6.0]]);
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while cell.generation() != 2 {
            assert!(
                std::time::Instant::now() < deadline,
                "reload never happened"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(cell.get().store.len(), 2);
        watcher.stop();
        let snap = reg.snapshot();
        assert_eq!(snap.counters["server.reloads"], 1);
        assert_eq!(snap.gauges["server.generation"], 2.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
