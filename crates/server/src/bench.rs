//! The load generator behind `warptree bench-client`.
//!
//! Drives a running server with a configurable number of connections
//! in either **closed-loop** (each connection sends its next request
//! the moment the previous response lands — measures capacity) or
//! **open-loop** (requests are launched on a fixed schedule regardless
//! of response times — measures behaviour at a target arrival rate,
//! exposing queueing delay the closed loop hides) mode.
//!
//! Requests cycle deterministically through a query set and an ε mix
//! (by default the ε ladder of the paper's Table-3-style experiments),
//! so two runs against the same corpus issue the same request
//! sequence. The report ([`BenchReport`]) carries throughput and
//! latency quantiles and serializes to the committed
//! `BENCH_serve.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::client::{search_request_v4, Client, ClientError, ShardConn};

/// How connections pace their requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopMode {
    /// Send the next request as soon as the response arrives.
    Closed,
    /// Send on a fixed schedule of `rate` requests/second across all
    /// connections; a connection that falls behind schedule sends
    /// immediately (no coordinated omission correction beyond
    /// measuring from the *scheduled* start).
    Open {
        /// Target aggregate arrival rate, requests per second.
        rate: f64,
    },
}

/// Load-generator configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Server address, e.g. `127.0.0.1:7878`.
    pub addr: String,
    /// Concurrent connections.
    pub connections: usize,
    /// Total requests across all connections.
    pub requests: usize,
    /// Pacing mode.
    pub mode: LoopMode,
    /// ε values cycled across requests.
    pub epsilons: Vec<f64>,
    /// Optional warping window applied to every request.
    pub window: Option<u32>,
    /// Query pool cycled across requests. Must be non-empty.
    pub queries: Vec<Vec<f64>>,
}

/// One request's outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Ok,
    Overloaded,
    Deadline,
    OtherError,
}

/// Aggregated results of a bench run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Requests sent (i.e. attempted; transport failures included).
    pub sent: u64,
    /// Successful responses.
    pub ok: u64,
    /// Typed `overloaded` rejections.
    pub overloaded: u64,
    /// Typed `deadline_exceeded` failures.
    pub deadline_exceeded: u64,
    /// Every other failure (transport, protocol, other server errors).
    pub errors: u64,
    /// Connect/reconnect failures and connections lost mid-exchange
    /// (reset, torn frame). Each also counts toward `errors`; this
    /// breaks out the transport share so a run against a flaky or
    /// restarting server reports *how* it failed, not just how much.
    pub conn_failures: u64,
    /// Total matches reported across successful responses.
    pub matches: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Successful responses per second.
    pub throughput: f64,
    /// Latency of successful requests, microseconds: p50.
    pub p50_us: u64,
    /// p95 latency, microseconds.
    pub p95_us: u64,
    /// p99 latency, microseconds.
    pub p99_us: u64,
    /// Maximum latency, microseconds.
    pub max_us: u64,
    /// Server-reported queue wait (admission → dequeue), microseconds:
    /// `[p50, p95, p99]`. Split out of end-to-end latency via the
    /// protocol-v4 `"timings"` object, so an overloaded run shows
    /// *where* the time went — waiting for a worker vs. doing the
    /// search.
    pub queue_wait_us: [u64; 3],
    /// Server-reported service time (dequeue → response built),
    /// microseconds: `[p50, p95, p99]`.
    pub service_us: [u64; 3],
    /// Echo of the run shape for the committed artifact.
    pub connections: usize,
    /// Pacing mode (`"closed"` or `"open@<rate>"`).
    pub mode: String,
}

impl BenchReport {
    /// Serializes the report as one JSON object (the `BENCH_serve.json`
    /// schema).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"connections\":{},\"mode\":\"{}\",\"sent\":{},\"ok\":{},\"overloaded\":{},\"deadline_exceeded\":{},\"errors\":{},\"conn_failures\":{},\"matches\":{},\"elapsed_ms\":{},\"throughput_rps\":{},\"latency_us\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"max\":{}}},\"queue_wait_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\"service_us\":{{\"p50\":{},\"p95\":{},\"p99\":{}}}}}",
            self.connections,
            warptree_obs::json::escape(&self.mode),
            self.sent,
            self.ok,
            self.overloaded,
            self.deadline_exceeded,
            self.errors,
            self.conn_failures,
            self.matches,
            self.elapsed.as_millis(),
            warptree_obs::json::num((self.throughput * 100.0).round() / 100.0),
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us,
            self.queue_wait_us[0],
            self.queue_wait_us[1],
            self.queue_wait_us[2],
            self.service_us[0],
            self.service_us[1],
            self.service_us[2],
        )
    }
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the load generator to completion and aggregates the report.
///
/// Errors only on setup problems (no queries, connect failure);
/// per-request failures are counted, not fatal — measuring a server
/// *while it rejects* is the point of the overload experiments.
pub fn run(config: &BenchConfig) -> Result<BenchReport, ClientError> {
    if config.queries.is_empty() {
        return Err(ClientError::Protocol(
            "bench needs at least one query".into(),
        ));
    }
    if config.epsilons.is_empty() {
        return Err(ClientError::Protocol(
            "bench needs at least one epsilon".into(),
        ));
    }
    let connections = config.connections.max(1);
    // Pre-render every request body; the generator then does no JSON
    // work on the hot path.
    let bodies: Vec<String> = (0..config.requests)
        .map(|i| {
            let q = &config.queries[i % config.queries.len()];
            let eps = config.epsilons[i % config.epsilons.len()];
            // Version 4: the response's "timings" object splits queue
            // wait from service time server-side.
            search_request_v4(q, eps, config.window)
        })
        .collect();
    // Fail fast if the server is unreachable before spawning threads.
    Client::connect(&config.addr)?.health()?;

    let next = Arc::new(AtomicU64::new(0));
    let started = Instant::now();
    let interval = match config.mode {
        LoopMode::Open { rate } if rate > 0.0 => Some(Duration::from_secs_f64(1.0 / rate)),
        _ => None,
    };

    let mut threads = Vec::new();
    for _ in 0..connections {
        let addr = config.addr.clone();
        let bodies = bodies.clone();
        let next = next.clone();
        threads.push(std::thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::new();
            let mut queue_waits: Vec<u64> = Vec::new();
            let mut services: Vec<u64> = Vec::new();
            let mut counts = [0u64; 4]; // indexed by Outcome
            let mut matches = 0u64;
            let mut sent = 0u64;
            // Connections are (re)dialed lazily per request: a broken
            // socket or refused connect costs *that request* (counted
            // by the ShardConn), never the rest of the thread's run —
            // measuring a server while it drops connections is part of
            // the point.
            let mut conn = ShardConn::with_timeout(&addr, Some(Duration::from_secs(30)));
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= bodies.len() {
                    break;
                }
                // Open loop: measure from the *scheduled* start, so
                // time spent waiting behind a slow server counts as
                // latency instead of silently stretching the run.
                let scheduled = interval.map(|iv| started + iv.mul_f64(i as f64));
                if let Some(t) = scheduled {
                    let now = Instant::now();
                    if t > now {
                        std::thread::sleep(t - now);
                    }
                }
                let t0 = scheduled.unwrap_or_else(Instant::now);
                sent += 1;
                let outcome = match conn.request(&bodies[i]) {
                    Ok(v) => {
                        matches += v
                            .get("count")
                            .and_then(crate::json::Json::as_u64)
                            .unwrap_or(0);
                        if let Some(t) = v.get("timings") {
                            if let Some(q) = t.get("queue_ns").and_then(crate::json::Json::as_u64) {
                                queue_waits.push(q / 1000);
                            }
                            if let Some(s) = t.get("service_ns").and_then(crate::json::Json::as_u64)
                            {
                                services.push(s / 1000);
                            }
                        }
                        Outcome::Ok
                    }
                    Err(ClientError::Server { ref code, .. }) if code == "overloaded" => {
                        Outcome::Overloaded
                    }
                    Err(ClientError::Server { ref code, .. }) if code == "deadline_exceeded" => {
                        Outcome::Deadline
                    }
                    // Dial failures and torn connections were already
                    // counted (and the dead socket dropped) by the
                    // ShardConn; they land here as plain errors.
                    Err(_) => Outcome::OtherError,
                };
                if outcome == Outcome::Ok {
                    latencies.push(t0.elapsed().as_micros() as u64);
                }
                counts[outcome as usize] += 1;
            }
            (
                latencies,
                queue_waits,
                services,
                counts,
                conn.conn_failures(),
                matches,
                sent,
            )
        }));
    }

    let mut latencies: Vec<u64> = Vec::new();
    let mut queue_waits: Vec<u64> = Vec::new();
    let mut services: Vec<u64> = Vec::new();
    let mut counts = [0u64; 4];
    let mut conn_failures = 0u64;
    let mut matches = 0u64;
    let mut sent = 0u64;
    for t in threads {
        let (l, qw, sv, c, cf, m, s) = t.join().expect("bench thread");
        latencies.extend(l);
        queue_waits.extend(qw);
        services.extend(sv);
        for (acc, v) in counts.iter_mut().zip(c) {
            *acc += v;
        }
        conn_failures += cf;
        matches += m;
        sent += s;
    }
    let elapsed = started.elapsed();
    latencies.sort_unstable();
    queue_waits.sort_unstable();
    services.sort_unstable();
    let ok = counts[Outcome::Ok as usize];
    Ok(BenchReport {
        sent,
        ok,
        overloaded: counts[Outcome::Overloaded as usize],
        deadline_exceeded: counts[Outcome::Deadline as usize],
        errors: counts[Outcome::OtherError as usize],
        conn_failures,
        matches,
        elapsed,
        throughput: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        p99_us: quantile(&latencies, 0.99),
        max_us: latencies.last().copied().unwrap_or(0),
        queue_wait_us: [
            quantile(&queue_waits, 0.50),
            quantile(&queue_waits, 0.95),
            quantile(&queue_waits, 0.99),
        ],
        service_us: [
            quantile(&services, 0.50),
            quantile(&services, 0.95),
            quantile(&services, 0.99),
        ],
        connections,
        mode: match config.mode {
            LoopMode::Closed => "closed".to_string(),
            LoopMode::Open { rate } => format!("open@{rate}"),
        },
    })
}

/// The default ε mix: the quick-scale ladder used throughout the
/// repo's Table-3-style experiments.
pub fn default_epsilons() -> Vec<f64> {
    vec![2.5, 5.0, 10.0, 15.0, 20.0, 25.0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_pick_expected_ranks() {
        let v: Vec<u64> = (0..=100).collect(); // 101 samples, value == index
        assert_eq!(quantile(&v, 0.50), 50);
        assert_eq!(quantile(&v, 0.95), 95);
        assert_eq!(quantile(&v, 0.99), 99);
        assert_eq!(quantile(&v, 1.0), 100);
        assert_eq!(quantile(&[], 0.5), 0);
    }

    #[test]
    fn report_serializes_to_stable_schema() {
        let r = BenchReport {
            sent: 10,
            ok: 8,
            overloaded: 1,
            deadline_exceeded: 0,
            errors: 1,
            conn_failures: 1,
            matches: 42,
            elapsed: Duration::from_millis(500),
            throughput: 16.0,
            p50_us: 100,
            p95_us: 200,
            p99_us: 300,
            max_us: 400,
            queue_wait_us: [5, 40, 80],
            service_us: [95, 160, 220],
            connections: 4,
            mode: "closed".to_string(),
        };
        let v = crate::json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("ok").and_then(crate::json::Json::as_u64), Some(8));
        assert_eq!(
            v.get("conn_failures").and_then(crate::json::Json::as_u64),
            Some(1)
        );
        assert_eq!(
            v.get("latency_us")
                .and_then(|l| l.get("p99"))
                .and_then(crate::json::Json::as_u64),
            Some(300)
        );
        assert_eq!(
            v.get("queue_wait_us")
                .and_then(|l| l.get("p95"))
                .and_then(crate::json::Json::as_u64),
            Some(40)
        );
        assert_eq!(
            v.get("service_us")
                .and_then(|l| l.get("p50"))
                .and_then(crate::json::Json::as_u64),
            Some(95)
        );
        assert_eq!(
            v.get("throughput_rps").and_then(crate::json::Json::as_f64),
            Some(16.0)
        );
    }
}
