//! A fixed-size worker pool with a **bounded** queue — the admission
//! control half of the server.
//!
//! Submission is non-blocking: [`WorkerPool::try_submit`] either
//! enqueues the job or fails *immediately* with
//! [`SubmitError::Overloaded`], which the server converts into a typed
//! `overloaded` protocol error. This keeps queueing delay bounded (at
//! most `capacity` jobs deep) instead of letting latency grow without
//! limit under overload — the classic bounded-queue/backpressure
//! design.
//!
//! Shutdown is *draining*: workers finish every job already admitted,
//! then exit. Combined with the deadline check the server performs at
//! dequeue time, a drain completes in bounded time even with a full
//! queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use warptree_obs::Gauge;

/// A queued unit of work.
pub type Job = Box<dyn FnOnce() + Send + 'static>;

/// Why a submission was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity.
    Overloaded,
    /// The pool is draining and admits no new work.
    ShuttingDown,
}

struct State {
    queue: VecDeque<Job>,
    shutting_down: bool,
}

struct Shared {
    state: Mutex<State>,
    not_empty: Condvar,
    capacity: usize,
    depth: Gauge,
}

/// A fixed-size thread pool over one bounded FIFO queue.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads sharing a queue bounded at `capacity`
    /// jobs. `depth` is updated with the instantaneous queue length on
    /// every enqueue/dequeue (pass `Gauge::noop()` to skip metering).
    pub fn new(workers: usize, capacity: usize, depth: Gauge) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::with_capacity(capacity),
                shutting_down: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            depth,
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("warptree-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            shared,
            workers: handles,
        }
    }

    /// Enqueues `job` unless the queue is full or the pool is draining.
    /// Never blocks.
    pub fn try_submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut state = self.shared.state.lock().expect("pool lock");
        if state.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if state.queue.len() >= self.shared.capacity {
            return Err(SubmitError::Overloaded);
        }
        state.queue.push_back(job);
        self.shared.depth.set(state.queue.len() as f64);
        drop(state);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// The instantaneous queue length.
    pub fn queue_len(&self) -> usize {
        self.shared.state.lock().expect("pool lock").queue.len()
    }

    /// Begins a drain: no new jobs are admitted; already-queued jobs
    /// still run. Idempotent. Does not wait — call [`WorkerPool::join`]
    /// to wait for the drain to finish.
    pub fn shutdown(&self) {
        let mut state = self.shared.state.lock().expect("pool lock");
        state.shutting_down = true;
        drop(state);
        self.shared.not_empty.notify_all();
    }

    /// Drains and joins every worker.
    pub fn join(mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool lock");
            loop {
                if let Some(job) = state.queue.pop_front() {
                    shared.depth.set(state.queue.len() as f64);
                    break job;
                }
                if state.shutting_down {
                    return;
                }
                state = shared.not_empty.wait(state).expect("pool lock");
            }
        };
        // Run outside the lock; a panicking job must not take the
        // worker (and with it 1/N of the pool's capacity) down.
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_jobs() {
        let pool = WorkerPool::new(4, 16, Gauge::noop());
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..16 {
            let c = counter.clone();
            pool.try_submit(Box::new(move || {
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        // One worker blocked on a gate; capacity 2 admits exactly two
        // more jobs, then rejects.
        let pool = WorkerPool::new(1, 2, Gauge::noop());
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap(); // worker is now occupied
        pool.try_submit(Box::new(|| {})).unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        let err = pool.try_submit(Box::new(|| {})).unwrap_err();
        assert_eq!(err, SubmitError::Overloaded);
        gate_tx.send(()).unwrap();
        pool.join();
    }

    #[test]
    fn shutdown_drains_queued_jobs_then_rejects() {
        let pool = WorkerPool::new(1, 8, Gauge::noop());
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = counter.clone();
            pool.try_submit(Box::new(move || {
                std::thread::sleep(Duration::from_millis(1));
                c.fetch_add(1, Ordering::SeqCst);
            }))
            .unwrap();
        }
        pool.shutdown();
        assert_eq!(
            pool.try_submit(Box::new(|| {})).unwrap_err(),
            SubmitError::ShuttingDown
        );
        pool.join();
        assert_eq!(counter.load(Ordering::SeqCst), 5, "drain ran queued jobs");
    }

    #[test]
    fn panicking_job_does_not_kill_the_worker() {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {})); // keep test output clean
        let pool = WorkerPool::new(1, 8, Gauge::noop());
        pool.try_submit(Box::new(|| panic!("job panic"))).unwrap();
        let (tx, rx) = mpsc::channel();
        pool.try_submit(Box::new(move || tx.send(42).unwrap()))
            .unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        pool.join();
        std::panic::set_hook(prev);
    }

    #[test]
    fn queue_depth_gauge_tracks_length() {
        let reg = warptree_obs::MetricsRegistry::new();
        let pool = WorkerPool::new(1, 8, reg.gauge("server.queue_depth"));
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        let (started_tx, started_rx) = mpsc::channel::<()>();
        pool.try_submit(Box::new(move || {
            started_tx.send(()).unwrap();
            gate_rx.recv().unwrap();
        }))
        .unwrap();
        started_rx.recv().unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        pool.try_submit(Box::new(|| {})).unwrap();
        assert_eq!(reg.snapshot().gauges["server.queue_depth"], 2.0);
        gate_tx.send(()).unwrap();
        pool.join();
        assert_eq!(reg.snapshot().gauges["server.queue_depth"], 0.0);
    }
}
