//! Deterministic network-fault injection for chaos testing.
//!
//! [`ChaosStream`] wraps any `Read + Write` transport (in tests, the
//! client side of a TCP connection to a live server) and injects the
//! three transport failures a framed protocol must survive:
//!
//! * **torn frame** — a write delivers only a prefix of its bytes and
//!   then fails, leaving the peer holding an incomplete frame;
//! * **dropped frame** — a write is swallowed whole (nothing reaches
//!   the peer) and fails, as when a connection resets between
//!   `send()` succeeding locally and the bytes leaving the host;
//! * **stall** — an operation completes, but only after a configurable
//!   delay, exercising read-timeout and idle-detection paths.
//!
//! Faults are driven by a seeded xorshift generator, so a chaos run is
//! exactly reproducible from its [`ChaosConfig::seed`] — the property
//! the fixed-seed CI smoke job depends on. Composing this wrapper with
//! the disk-side [`FaultVfs`](warptree_disk::FaultVfs) covers both
//! halves of the failure surface: bytes lost in flight and bytes
//! corrupted at rest.

use std::io::{self, Read, Write};
use std::time::Duration;

/// Fault probabilities and determinism knobs for a [`ChaosStream`].
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for the fault schedule; equal seeds (and equal operation
    /// sequences) inject identical faults.
    pub seed: u64,
    /// Per-mille chance (0–1000) that a write is torn: a prefix is
    /// delivered, then the write fails `ConnectionReset`.
    pub torn_per_mille: u16,
    /// Per-mille chance that a write is dropped wholesale: nothing is
    /// delivered and the write fails `BrokenPipe`.
    pub drop_per_mille: u16,
    /// Per-mille chance that an operation (read or write) stalls for
    /// [`ChaosConfig::stall`] before proceeding normally.
    pub stall_per_mille: u16,
    /// How long a stalled operation sleeps.
    pub stall: Duration,
}

impl ChaosConfig {
    /// A schedule that never injects anything — a wrapped stream
    /// behaves byte-identically to the bare transport.
    pub fn disabled(seed: u64) -> Self {
        ChaosConfig {
            seed,
            torn_per_mille: 0,
            drop_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::ZERO,
        }
    }
}

/// A `Read + Write` wrapper injecting the [`ChaosConfig`] fault mix.
///
/// Faults fire on the *client's* side of the wire, so the peer (the
/// server under test) observes exactly what a hostile network would
/// show it: truncated frames, vanished requests, and long pauses —
/// never malformed length prefixes the client itself fabricated.
pub struct ChaosStream<S> {
    inner: S,
    rng: u64,
    config: ChaosConfig,
    /// Faults injected so far, by kind: `[torn, dropped, stalled]`.
    /// Tests assert the schedule actually fired.
    pub injected: [u64; 3],
}

impl<S> ChaosStream<S> {
    /// Wraps `inner` under `config`'s fault schedule.
    pub fn new(inner: S, config: ChaosConfig) -> Self {
        ChaosStream {
            inner,
            // xorshift has a fixed point at zero; nudge it off.
            rng: config.seed | 1,
            config,
            injected: [0; 3],
        }
    }

    /// The wrapped transport (e.g. to shut a TCP socket down after a
    /// torn write, completing the "client vanished mid-frame" picture).
    pub fn get_ref(&self) -> &S {
        &self.inner
    }

    /// Total faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    fn roll(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D) % 1000
    }

    fn maybe_stall(&mut self) {
        if self.config.stall_per_mille > 0 && self.roll() < self.config.stall_per_mille as u64 {
            self.injected[2] += 1;
            std::thread::sleep(self.config.stall);
        }
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.maybe_stall();
        self.inner.read(buf)
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.maybe_stall();
        if self.config.torn_per_mille > 0 && self.roll() < self.config.torn_per_mille as u64 {
            self.injected[0] += 1;
            // Deliver a strict prefix, then die: the peer now holds a
            // frame it can never complete.
            if buf.len() > 1 {
                let _ = self.inner.write(&buf[..buf.len() / 2]);
                let _ = self.inner.flush();
            }
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: torn write",
            ));
        }
        if self.config.drop_per_mille > 0 && self.roll() < self.config.drop_per_mille as u64 {
            self.injected[1] += 1;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "chaos: dropped write",
            ));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// An in-memory sink that records everything written to it.
    #[derive(Default)]
    struct Sink(Vec<u8>);
    impl Write for Sink {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_schedule_is_transparent() {
        let mut s = ChaosStream::new(Sink::default(), ChaosConfig::disabled(7));
        s.write_all(b"hello frames").unwrap();
        assert_eq!(s.get_ref().0, b"hello frames");
        assert_eq!(s.faults_injected(), 0);
    }

    #[test]
    fn torn_write_delivers_a_strict_prefix_then_fails() {
        let cfg = ChaosConfig {
            seed: 42,
            torn_per_mille: 1000, // always
            drop_per_mille: 0,
            stall_per_mille: 0,
            stall: Duration::ZERO,
        };
        let mut s = ChaosStream::new(Sink::default(), cfg);
        let err = s.write(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(s.get_ref().0, b"01234"); // half the buffer
        assert_eq!(s.injected, [1, 0, 0]);
    }

    #[test]
    fn dropped_write_delivers_nothing() {
        let cfg = ChaosConfig {
            seed: 42,
            torn_per_mille: 0,
            drop_per_mille: 1000,
            stall_per_mille: 0,
            stall: Duration::ZERO,
        };
        let mut s = ChaosStream::new(Sink::default(), cfg);
        let err = s.write(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert!(s.get_ref().0.is_empty());
        assert_eq!(s.injected, [0, 1, 0]);
    }

    #[test]
    fn equal_seeds_inject_identical_schedules() {
        let cfg = ChaosConfig {
            seed: 1234,
            torn_per_mille: 300,
            drop_per_mille: 300,
            stall_per_mille: 0,
            stall: Duration::ZERO,
        };
        let run = |cfg: ChaosConfig| {
            let mut s = ChaosStream::new(Sink::default(), cfg);
            let mut outcomes = Vec::new();
            for _ in 0..64 {
                outcomes.push(s.write(b"xy").is_ok());
            }
            (outcomes, s.injected)
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a, b);
        assert!(
            a.1[0] > 0 && a.1[1] > 0,
            "both fault kinds fired: {:?}",
            a.1
        );
    }
}
