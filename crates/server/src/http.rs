//! A minimal plain-HTTP exposition endpoint: `GET /metrics` returns the
//! server's [`MetricsRegistry`] in the Prometheus text exposition
//! format (version 0.0.4).
//!
//! This is deliberately not a web framework: one accept thread, one
//! request per connection, request line parsed just far enough to route
//! `GET /metrics`. Anything else gets `404`. The endpoint serves
//! scrapers only — the query protocol stays on the framed TCP port
//! (which also exposes the same text via `{"op":"metrics"}` for clients
//! that already speak it).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use warptree_obs::MetricsRegistry;

/// The background thread serving `GET /metrics`.
pub struct MetricsHttp {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsHttp {
    /// Binds `addr` (port 0 picks a free port) and starts serving.
    pub fn spawn(addr: &str, registry: MetricsRegistry) -> io::Result<MetricsHttp> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("warptree-metrics-http".to_string())
            .spawn(move || serve_loop(listener, &registry, &stop2))?;
        Ok(MetricsHttp {
            addr: bound,
            stop,
            handle: Some(handle),
        })
    }

    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsHttp {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(listener: TcpListener, registry: &MetricsRegistry, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => serve_request(stream, registry),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Handles one HTTP exchange: read the request head (bounded), answer,
/// close. Scrapers open a fresh connection per scrape, so keep-alive is
/// not worth its complexity here.
fn serve_request(mut stream: TcpStream, registry: &MetricsRegistry) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let _ = stream.set_write_timeout(Some(Duration::from_millis(2000)));
    let Some(request_line) = read_request_line(&mut stream) else {
        return;
    };
    let mut parts = request_line.split_whitespace();
    let (method, path) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    let response = if method == "GET" && (path == "/metrics" || path.starts_with("/metrics?")) {
        let body = registry.snapshot().to_prometheus();
        format!(
            "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    } else {
        let body = "not found; try GET /metrics\n";
        format!(
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )
    };
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// Reads up to the first CRLF (the request line), bounding total bytes
/// consumed so a hostile peer cannot feed an endless head. Headers past
/// the request line are read and discarded only as a side effect of the
/// buffer; the response does not depend on them.
fn read_request_line(stream: &mut TcpStream) -> Option<String> {
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        let n = match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(_) => break,
        };
        head.extend_from_slice(&buf[..n]);
        if head.windows(2).any(|w| w == b"\r\n") || head.len() >= 8192 {
            break;
        }
    }
    let line_end = head
        .windows(2)
        .position(|w| w == b"\r\n")
        .unwrap_or(head.len());
    if line_end == 0 {
        return None;
    }
    String::from_utf8(head[..line_end].to_vec()).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn metrics_endpoint_serves_exposition() {
        let registry = MetricsRegistry::new();
        registry.counter("server.requests_ok").add(7);
        registry.histogram("server.request_ns").record(1000);
        let http = MetricsHttp::spawn("127.0.0.1:0", registry).unwrap();
        let resp = http_get(http.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        assert!(resp.contains("# TYPE server_requests_ok counter"), "{resp}");
        assert!(resp.contains("server_requests_ok 7"), "{resp}");
        assert!(resp.contains("server_request_ns_count 1"), "{resp}");
        // Anything but GET /metrics is a 404, and the server survives it.
        let resp = http_get(http.addr(), "/other");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = http_get(http.addr(), "/metrics");
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
        http.stop();
    }
}
