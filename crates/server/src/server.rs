//! The TCP query server: accept loop, per-connection protocol
//! handling, admission control, deadlines, metrics, graceful drain.
//!
//! ## Threading model
//!
//! One non-blocking accept loop; one thread per connection; a
//! fixed-size [`WorkerPool`] that actually executes queries. The
//! connection thread parses a frame, classifies it ([control
//! ops](crate::proto::Request::is_control) answer inline, so `health`
//! and `stats` keep responding even when every worker is busy), and
//! submits query work to the pool. Submission is the admission point:
//! a full queue fails the request *now* with `overloaded` rather than
//! queueing unbounded latency, and a request whose deadline passes
//! while queued is dropped at dequeue with `deadline_exceeded` (the
//! work is never started — wasted-work avoidance under overload).
//!
//! ## Snapshot discipline
//!
//! Each query pins the current [`SnapshotCell`] value once, at
//! execution start, and uses only that `Arc` for its whole lifetime —
//! never re-reading the cell mid-request. The response's
//! `"generation"` field reports which snapshot answered; concurrent
//! hot reloads change which snapshot *new* requests pin, nothing else.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime};

use warptree_core::search::{AnswerSet, QueryOutput, QueryRequest, SearchMetrics, SearchStats};
use warptree_core::sequence::SequenceStore;
use warptree_disk::{
    append_segment_with, compact_once_with, open_dir_snapshot_with, quarantine_segment_with,
    real_vfs, scrub_dir_with, DegradedError, DirSnapshot, DiskError, Vfs,
};
use warptree_obs::{json as obs_json, MetricsRegistry, Trace};

use crate::http::MetricsHttp;
use crate::pool::{SubmitError, WorkerPool};
use crate::proto::{
    self, error_response, ok_response, read_frame_idle_aware, write_frame, ErrorCode, FrameEvent,
    Request,
};
use crate::snapshot::{instrument_snapshot, ReloadWatcher, SnapshotCell};

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads executing queries.
    pub workers: usize,
    /// Bounded queue capacity — the admission-control knob. Requests
    /// beyond `workers` running + `queue_depth` queued are rejected
    /// `overloaded`.
    pub queue_depth: usize,
    /// Per-request deadline, measured from admission. Enforced at
    /// dequeue (expired requests are dropped unstarted) and between
    /// `batch` items; a single running search is never interrupted
    /// mid-query, so cap per-query cost with
    /// [`ServerConfig::max_query_len`].
    pub deadline: Duration,
    /// How often the reload watcher polls the commit manifest.
    pub reload_interval: Duration,
    /// Longest accepted query; longer ones fail `bad_request` (the
    /// filter cost is quadratic in query length, so this caps
    /// per-request work).
    pub max_query_len: usize,
    /// Page-cache size for newly opened snapshots.
    pub cache_pages: usize,
    /// Node-cache size for newly opened snapshots.
    pub cache_nodes: usize,
    /// Maximum concurrent connections (the server is
    /// thread-per-connection, so this bounds connection threads).
    /// Connections beyond the cap receive a typed `overloaded` error
    /// frame and are closed without spawning a thread.
    pub max_conns: usize,
    /// Accept test-only protocol ops (`debug_sleep`). Never enable in
    /// production serving.
    pub enable_debug_ops: bool,
    /// Cap on per-request `parallelism` (worker subthreads one query
    /// may spawn — the `--threads` serve flag). Requests asking for
    /// more are silently clamped; the default of 1 keeps every query
    /// sequential unless the operator opts in. Results are
    /// byte-identical at every setting, so clamping never changes an
    /// answer.
    pub max_parallelism: u32,
    /// Tail-segment count at which the background compactor starts
    /// folding segments back together (LSM-style, using the paper's
    /// binary merge). `0` disables background compaction — tails then
    /// accumulate until an offline `warptree compact`.
    pub compact_threshold: usize,
    /// How often the compaction worker checks the tail-segment count.
    pub compact_interval: Duration,
    /// How often the background scrubber walks every committed page
    /// through the CRC-checked read path, tombstoning segments that
    /// fail and healing quarantined ones by rebuilding them from the
    /// corpus. [`Duration::ZERO`] disables background scrubbing (the
    /// offline `warptree scrub` command remains available).
    pub scrub_interval: Duration,
    /// Slow-query threshold in milliseconds: any pool-executed request
    /// (or background job) whose total latency — queue wait included —
    /// reaches this lands in the in-memory slow-query ring served by
    /// `{"op":"slowlog"}`. `0` disables threshold capture (sampled
    /// traces still land in the ring).
    pub slow_ms: u64,
    /// Trace 1 in N pool-executed requests end to end (span tree over
    /// the whole search funnel) even when the client didn't ask; the
    /// resulting traces land in the slow-query ring. `0` disables
    /// sampling — clients can still request a trace per query
    /// (`"trace": true` at protocol version ≥ 4).
    pub trace_sample: u64,
    /// Capacity of the slow-query ring; oldest entries fall off.
    pub slowlog_capacity: usize,
    /// When set, serve `GET /metrics` (Prometheus text exposition
    /// 0.0.4) over plain HTTP on this address, alongside the framed
    /// protocol's `{"op":"metrics"}`.
    pub metrics_addr: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            deadline: Duration::from_secs(5),
            reload_interval: Duration::from_millis(200),
            max_query_len: 4096,
            cache_pages: 256,
            cache_nodes: 4096,
            max_conns: 256,
            enable_debug_ops: false,
            max_parallelism: 1,
            compact_threshold: 4,
            compact_interval: Duration::from_millis(500),
            scrub_interval: Duration::ZERO,
            slow_ms: 500,
            trace_sample: 0,
            slowlog_capacity: 128,
            metrics_addr: None,
        }
    }
}

/// One completed request (or background job) captured by the
/// slow-query ring: identity, where the time went, and — when it was
/// traced — the full span tree.
struct SlowEntry {
    op: &'static str,
    trace_id: String,
    unix_ms: u64,
    generation: u64,
    /// Total latency: queue wait + service.
    dur_ns: u64,
    queue_ns: u64,
    /// The serialized span tree, when the request was traced.
    trace_json: Option<String>,
}

/// The bounded in-memory slow-query ring, shared by the request path
/// and the background workers. Push is O(1) under one short-held lock;
/// `{"op":"slowlog"}` renders newest-first. It also owns the tracing
/// policy: the request counter that drives 1-in-N sampling and the
/// slow-threshold test.
struct SlowLog {
    entries: Mutex<VecDeque<SlowEntry>>,
    capacity: usize,
    /// Threshold in ns; `u64::MAX` when threshold capture is disabled.
    slow_ns: u64,
    /// Sample every Nth request; `0` disables sampling.
    sample_every: u64,
    seen: AtomicU64,
    registry: MetricsRegistry,
}

/// Traces kept in the ring are capped so a pathological span tree
/// (huge fan-out at a broad ε) cannot pin megabytes per entry; the
/// entry survives with `"trace": null`.
const SLOWLOG_MAX_TRACE_BYTES: usize = 256 * 1024;

impl SlowLog {
    fn new(config: &ServerConfig, registry: MetricsRegistry) -> SlowLog {
        SlowLog {
            entries: Mutex::new(VecDeque::new()),
            capacity: config.slowlog_capacity,
            slow_ns: match config.slow_ms {
                0 => u64::MAX,
                ms => ms.saturating_mul(1_000_000),
            },
            sample_every: config.trace_sample,
            seen: AtomicU64::new(0),
            registry,
        }
    }

    /// Decides, per admitted request, whether this one is traced by the
    /// 1-in-N sampler (the first request always is, so a freshly booted
    /// server with sampling on produces a trace immediately).
    fn sample(&self) -> bool {
        self.sample_every > 0
            && self
                .seen
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every)
    }

    /// Offers a completed request to the ring; it is kept when it was
    /// slow (threshold) or traced (sampled or client-requested traces
    /// are always worth keeping — they are why the ring exists).
    fn offer(&self, op: &'static str, generation: u64, dur_ns: u64, queue_ns: u64, trace: &Trace) {
        if dur_ns < self.slow_ns && !trace.is_active() {
            return;
        }
        let trace_json = trace
            .finish()
            .map(|data| data.to_json())
            .filter(|j| j.len() <= SLOWLOG_MAX_TRACE_BYTES);
        let entry = SlowEntry {
            op,
            trace_id: trace.id().unwrap_or_default().to_string(),
            unix_ms: SystemTime::now()
                .duration_since(SystemTime::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            generation,
            dur_ns,
            queue_ns,
            trace_json,
        };
        if dur_ns >= self.slow_ns {
            self.registry.counter("server.slow_queries").incr();
        }
        let mut entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        if self.capacity == 0 {
            return;
        }
        while entries.len() >= self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        self.registry
            .gauge("server.slowlog_entries")
            .set(entries.len() as f64);
    }

    /// The `{"op":"slowlog"}` body: entries as a JSON array, newest
    /// first (the entry an operator is chasing is almost always the
    /// most recent one).
    fn to_json(&self) -> String {
        let entries = self.entries.lock().unwrap_or_else(|p| p.into_inner());
        let mut out = String::from("[");
        for (i, e) in entries.iter().rev().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"op\":\"{}\",\"trace_id\":\"{}\",\"unix_ms\":{},\"generation\":{},\"dur_ns\":{},\"queue_ns\":{},\"trace\":{}}}",
                e.op,
                obs_json::escape(&e.trace_id),
                e.unix_ms,
                e.generation,
                e.dur_ns,
                e.queue_ns,
                e.trace_json.as_deref().unwrap_or("null"),
            ));
        }
        out.push(']');
        out
    }
}

/// Trace ids for server-initiated traces (sampled requests, background
/// jobs): unique within the process, compact, and obviously synthetic
/// (`srv-…`) next to client-supplied ids.
fn next_trace_id(kind: &str) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!("srv-{kind}-{}", SEQ.fetch_add(1, Ordering::Relaxed))
}

/// Shared write-path state: `ingest` requests and the background
/// compactor both commit new manifest generations, so they serialize
/// on [`IngestState::writer`] — two committers racing would both read
/// the same old generation and one commit would be lost.
struct IngestState {
    vfs: Arc<dyn Vfs>,
    dir: PathBuf,
    /// Serializes every manifest-committing writer (ingest +
    /// compaction). Readers never take it: queries run on pinned
    /// snapshots and reloads only ever open committed generations.
    writer: Mutex<()>,
    cell: Arc<SnapshotCell>,
    registry: MetricsRegistry,
    cache_pages: usize,
    cache_nodes: usize,
    /// Background jobs (compaction, scrub) report into the same ring
    /// as slow requests, so `slowlog` shows *everything* that ate time.
    slowlog: Arc<SlowLog>,
}

impl IngestState {
    /// Reopens the committed generation and publishes it, so the
    /// committing request observes its own write immediately instead
    /// of waiting for the reload watcher's next poll.
    fn publish(&self) -> Result<Arc<DirSnapshot>, DiskError> {
        let snap = Arc::new(open_dir_snapshot_with(
            self.vfs.as_ref(),
            &self.dir,
            self.cache_pages,
            self.cache_nodes,
        )?);
        instrument_snapshot(&snap, &self.registry);
        self.cell.swap(snap.clone());
        Ok(snap)
    }

    /// The writer lock, surviving a poisoned-by-panic previous holder:
    /// a torn commit is exactly what the recovery sweep at the next
    /// open handles, so poisoning carries no extra meaning here.
    fn lock_writer(&self) -> std::sync::MutexGuard<'_, ()> {
        self.writer.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Background compactor: whenever the tail-segment count reaches the
/// threshold, folds the cheapest adjacent pair with the paper's binary
/// merge (one manifest generation per fold) and republishes. In-flight
/// queries keep their pinned snapshots, so compaction is invisible to
/// readers except in `info`'s segment count.
struct CompactionWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CompactionWorker {
    fn spawn(state: Arc<IngestState>, threshold: usize, interval: Duration) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("warptree-compact".to_string())
            .spawn(move || compact_loop(&state, threshold, interval, &stop2))?;
        Ok(CompactionWorker {
            stop,
            handle: Some(handle),
        })
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn compact_loop(state: &IngestState, threshold: usize, interval: Duration, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(interval);
        // Fold until back under threshold; each iteration re-reads the
        // published snapshot, so concurrent ingests extend the loop and
        // a failed fold ends it (retried after the next sleep).
        while !stop.load(Ordering::SeqCst)
            && state.cell.get().segment_count().saturating_sub(1) >= threshold
        {
            let _guard = state.lock_writer();
            let trace = if state.slowlog.sample() {
                Trace::active(next_trace_id("compact"))
            } else {
                Trace::noop()
            };
            let span = trace.span("job.compact");
            let t0 = Instant::now();
            let outcome = compact_once_with(state.vfs.as_ref(), &state.dir, &state.registry);
            let folded = matches!(outcome, Ok(Some(_)));
            let mut failed = false;
            match outcome {
                Ok(Some(_)) => {
                    if state.publish().is_err() {
                        state.registry.counter("server.compaction_errors").incr();
                        failed = true;
                    }
                }
                Ok(None) => {} // nothing left to fold
                Err(_) => {
                    state.registry.counter("server.compaction_errors").incr();
                    failed = true;
                }
            }
            if span.is_active() {
                span.attr_u64("folded", folded as u64);
            }
            drop(span);
            // Meter only passes that did (or tried to do) real work — a
            // nothing-to-fold probe would poison the duration histogram
            // with near-zero samples.
            if folded || failed {
                let dur_ns = t0.elapsed().as_nanos() as u64;
                state.registry.histogram("server.compact_ns").record(dur_ns);
                state
                    .slowlog
                    .offer("compact", state.cell.get().generation, dur_ns, 0, &trace);
            }
            if !folded || failed {
                break;
            }
        }
    }
}

/// Background scrubber: on an interval, walks every committed page
/// through the CRC-checked read path ([`scrub_dir_with`]), tombstoning
/// segments that fail and healing quarantined segments by rebuilding
/// them from the (intact) corpus — the server's self-repair loop.
struct ScrubWorker {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrubWorker {
    fn spawn(state: Arc<IngestState>, interval: Duration) -> io::Result<Self> {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let handle = std::thread::Builder::new()
            .name("warptree-scrub".to_string())
            .spawn(move || scrub_loop(&state, interval, &stop2))?;
        Ok(ScrubWorker {
            stop,
            handle: Some(handle),
        })
    }

    fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn scrub_loop(state: &IngestState, interval: Duration, stop: &AtomicBool) {
    // Sleep in small slices so stop() returns promptly even with a
    // long scrub interval.
    let slice = interval
        .min(Duration::from_millis(50))
        .max(Duration::from_millis(1));
    let mut elapsed = Duration::ZERO;
    while !stop.load(Ordering::SeqCst) {
        if elapsed < interval {
            std::thread::sleep(slice);
            elapsed += slice;
            continue;
        }
        elapsed = Duration::ZERO;
        // The scrub commits manifest generations (quarantine, heal), so
        // it serializes with ingest and compaction like any writer.
        let _guard = state.lock_writer();
        let trace = if state.slowlog.sample() {
            Trace::active(next_trace_id("scrub"))
        } else {
            Trace::noop()
        };
        let span = trace.span("job.scrub");
        let t0 = Instant::now();
        match scrub_dir_with(state.vfs.as_ref(), &state.dir, true, &state.registry) {
            Ok(report) => {
                if span.is_active() {
                    span.attr_u64("healed", report.healed.len() as u64);
                    span.attr_u64("newly_quarantined", report.newly_quarantined.len() as u64);
                }
                if !report.healed.is_empty() {
                    state
                        .registry
                        .counter("server.scrub_heals")
                        .add(report.healed.len() as u64);
                }
                if report.unrecoverable.is_some() {
                    state.registry.counter("server.scrub_errors").incr();
                }
                if !report.newly_quarantined.is_empty() || !report.healed.is_empty() {
                    // The manifest moved; republish promptly instead of
                    // waiting for the reload watcher's next poll.
                    if state.publish().is_err() {
                        state.registry.counter("server.scrub_errors").incr();
                    }
                }
            }
            Err(_) => state.registry.counter("server.scrub_errors").incr(),
        }
        drop(span);
        let dur_ns = t0.elapsed().as_nanos() as u64;
        state.registry.histogram("server.scrub_ns").record(dur_ns);
        state
            .slowlog
            .offer("scrub", state.cell.get().generation, dur_ns, 0, &trace);
    }
}

/// Everything a connection or worker needs, shared behind one `Arc`.
struct Ctx {
    cell: Arc<SnapshotCell>,
    registry: MetricsRegistry,
    /// One registry-backed bundle shared by *all* queries — per-process
    /// totals (the `stats` op view), not per-request.
    search_metrics: SearchMetrics,
    ingest: Arc<IngestState>,
    shutdown: Arc<AtomicBool>,
    deadline: Duration,
    max_query_len: usize,
    workers: usize,
    queue_depth: usize,
    max_conns: usize,
    enable_debug_ops: bool,
    max_parallelism: u32,
    slowlog: Arc<SlowLog>,
}

/// The server factory. Construct with [`Server::start`] (real
/// filesystem, fresh registry) or [`Server::start_with`] (injected
/// [`Vfs`] and registry — tests and embedding).
pub struct Server;

impl Server {
    /// Opens the committed generation of `dir` and serves it.
    pub fn start(dir: &Path, config: ServerConfig) -> io::Result<ServerHandle> {
        Server::start_with(real_vfs(), dir, config, MetricsRegistry::new())
    }

    /// [`Server::start`] with an injected filesystem and metrics
    /// registry.
    pub fn start_with(
        vfs: Arc<dyn Vfs>,
        dir: &Path,
        config: ServerConfig,
        registry: MetricsRegistry,
    ) -> io::Result<ServerHandle> {
        let snapshot =
            open_dir_snapshot_with(vfs.as_ref(), dir, config.cache_pages, config.cache_nodes)
                .map_err(|e| io::Error::other(format!("open index dir: {e}")))?;
        instrument_snapshot(&snapshot, &registry);
        let cell = Arc::new(SnapshotCell::new(Arc::new(snapshot)));
        let shutdown = Arc::new(AtomicBool::new(false));
        let slowlog = Arc::new(SlowLog::new(&config, registry.clone()));
        let ingest = Arc::new(IngestState {
            vfs: vfs.clone(),
            dir: dir.to_path_buf(),
            writer: Mutex::new(()),
            cell: cell.clone(),
            registry: registry.clone(),
            cache_pages: config.cache_pages,
            cache_nodes: config.cache_nodes,
            slowlog: slowlog.clone(),
        });
        let ctx = Arc::new(Ctx {
            cell: cell.clone(),
            registry: registry.clone(),
            search_metrics: SearchMetrics::register(&registry),
            ingest: ingest.clone(),
            shutdown: shutdown.clone(),
            deadline: config.deadline,
            max_query_len: config.max_query_len,
            workers: config.workers,
            queue_depth: config.queue_depth,
            max_conns: config.max_conns,
            enable_debug_ops: config.enable_debug_ops,
            max_parallelism: config.max_parallelism,
            slowlog,
        });

        let metrics_http = match &config.metrics_addr {
            Some(addr) => Some(MetricsHttp::spawn(addr, registry.clone())?),
            None => None,
        };

        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;

        let watcher = ReloadWatcher::spawn(
            vfs,
            dir.to_path_buf(),
            cell,
            registry.clone(),
            config.reload_interval,
            config.cache_pages,
            config.cache_nodes,
        );

        let compactor = if config.compact_threshold > 0 {
            Some(CompactionWorker::spawn(
                ingest.clone(),
                config.compact_threshold,
                config.compact_interval,
            )?)
        } else {
            None
        };

        let scrubber = if config.scrub_interval > Duration::ZERO {
            Some(ScrubWorker::spawn(ingest, config.scrub_interval)?)
        } else {
            None
        };

        let pool = Arc::new(WorkerPool::new(
            config.workers,
            config.queue_depth,
            registry.gauge("server.queue_depth"),
        ));

        let accept_ctx = ctx.clone();
        let accept = std::thread::Builder::new()
            .name("warptree-accept".to_string())
            .spawn(move || accept_loop(listener, accept_ctx, pool))?;

        Ok(ServerHandle {
            addr,
            shutdown,
            registry,
            accept: Some(accept),
            watcher: Some(watcher),
            compactor,
            scrubber,
            metrics_http,
        })
    }
}

/// A handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    registry: MetricsRegistry,
    accept: Option<JoinHandle<()>>,
    watcher: Option<ReloadWatcher>,
    compactor: Option<CompactionWorker>,
    scrubber: Option<ScrubWorker>,
    metrics_http: Option<MetricsHttp>,
}

impl ServerHandle {
    /// The actual bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the HTTP `GET /metrics` endpoint, when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_http.as_ref().map(|h| h.addr())
    }

    /// The server's metrics registry (shared with all components).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Asks the server to drain and stop: the accept loop closes, each
    /// connection finishes its current request, queued work runs to
    /// completion. Non-blocking; follow with [`ServerHandle::join`].
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// `true` once shutdown has been requested (locally or via the
    /// protocol `shutdown` op).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Waits for the drain to complete. Implies
    /// [`ServerHandle::request_shutdown`] having been called — joining
    /// a live server without it blocks until some shutdown trigger
    /// (e.g. a client's `shutdown` op) fires.
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Writers stop before the watcher: a compaction or scrub
        // finishing here must not be left unpublished-forever by a
        // dead watcher.
        if let Some(c) = self.compactor.take() {
            c.stop();
        }
        if let Some(s) = self.scrubber.take() {
            s.stop();
        }
        if let Some(w) = self.watcher.take() {
            w.stop();
        }
        if let Some(m) = self.metrics_http.take() {
            m.stop();
        }
    }

    /// [`ServerHandle::request_shutdown`] + [`ServerHandle::join`].
    pub fn stop(self) {
        self.request_shutdown();
        self.join();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(c) = self.compactor.take() {
            c.stop();
        }
        if let Some(s) = self.scrubber.take() {
            s.stop();
        }
        if let Some(w) = self.watcher.take() {
            w.stop();
        }
        if let Some(m) = self.metrics_http.take() {
            m.stop();
        }
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<Ctx>, pool: Arc<WorkerPool>) {
    let mut conns: Vec<JoinHandle<()>> = Vec::new();
    while !ctx.shutdown.load(Ordering::SeqCst) {
        // Reap finished connections on every iteration — including idle
        // ones — so long-lived servers don't accumulate dead handles
        // and the cap below counts only live connections.
        conns.retain(|h| !h.is_finished());
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Thread-per-connection needs a connection cap, or a
                // connection flood exhausts threads/memory before
                // admission control ever sees a request.
                if conns.len() >= ctx.max_conns {
                    ctx.registry.counter("server.rejected_overload").incr();
                    ctx.registry.counter("server.rejected_conn_limit").incr();
                    reject_connection(stream);
                    continue;
                }
                ctx.registry.counter("server.connections").incr();
                let conn_ctx = ctx.clone();
                let pool = pool.clone();
                match std::thread::Builder::new()
                    .name("warptree-conn".to_string())
                    .spawn(move || handle_conn(stream, &conn_ctx, &pool))
                {
                    Ok(h) => conns.push(h),
                    Err(_) => ctx.registry.counter("server.errors").incr(),
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                ctx.registry.counter("server.errors").incr();
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    // Drain: connections first (they still need live workers for their
    // in-flight requests), then the pool (runs everything already
    // queued, then exits).
    for h in conns {
        let _ = h.join();
    }
    drop(pool); // last reference → WorkerPool::drop drains and joins
}

/// A rejected connection gets a best-effort typed error frame before
/// the close, so its client sees `overloaded` instead of a bare reset.
/// Short write timeout: this runs on the accept thread.
fn reject_connection(mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = write_frame(
        &mut stream,
        error_response(
            ErrorCode::Overloaded,
            "connection limit reached; retry with backoff",
        )
        .as_bytes(),
    );
}

/// How many consecutive zero-progress 100 ms read timeouts we tolerate
/// *inside* a frame before giving up on the connection (~30 s). Between
/// frames the timeout just means "idle" and we poll the shutdown flag.
const FRAME_STALL_LIMIT: u32 = 300;

fn handle_conn(mut stream: TcpStream, ctx: &Ctx, pool: &WorkerPool) {
    // Nonblocking-ness is inherited from the listener on some
    // platforms; frames want blocking reads with a timeout so the
    // thread notices shutdown between requests.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    if stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .is_err()
    {
        return;
    }
    loop {
        // The idle-aware reader reports a timeout as `Idle` only when
        // zero bytes of the next frame have been consumed; once a frame
        // has begun it retries timeouts internally, so a slow client
        // can never desynchronize the stream.
        match read_frame_idle_aware(&mut stream, FRAME_STALL_LIMIT) {
            Ok(FrameEvent::Frame(payload)) => {
                if !serve_one(&payload, &mut stream, ctx, pool) {
                    return;
                }
                // During drain, close after answering rather than wait
                // for an idle window: a client polling faster than the
                // read timeout (a coordinator's health monitor, a tight
                // retry loop) would otherwise hold the drain open
                // indefinitely.
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Ok(FrameEvent::Closed) => return, // clean close
            Ok(FrameEvent::Idle) => {
                if ctx.shutdown.load(Ordering::SeqCst) {
                    return; // idle at a frame boundary during drain
                }
            }
            Err(_) => return, // torn frame / mid-frame stall / reset
        }
    }
}

/// Handles one request frame. Returns `false` when the connection
/// should close.
fn serve_one(payload: &[u8], stream: &mut TcpStream, ctx: &Ctx, pool: &WorkerPool) -> bool {
    let started = Instant::now();
    let (req, proto_version, trace_opts) = match Request::parse_full(payload, ctx.enable_debug_ops)
    {
        Ok(parsed) => parsed,
        Err(pe) => {
            ctx.registry.counter("server.bad_requests").incr();
            if pe.code == ErrorCode::UnsupportedVersion {
                ctx.registry.counter("server.unsupported_version").incr();
            }
            return respond(stream, &error_response(pe.code, &pe.message));
        }
    };

    if req.is_control() {
        let resp = clamp_oversized(control_response(&req, ctx), &ctx.registry);
        return respond(stream, &resp);
    }

    if ctx.shutdown.load(Ordering::SeqCst) {
        return respond(
            stream,
            &error_response(ErrorCode::ShuttingDown, "server is draining"),
        );
    }

    // Decide tracing at admission: a v4 client may demand it per
    // request; otherwise the 1-in-N sampler picks. One branch on the
    // untraced path — every downstream layer sees only the no-op
    // handle.
    let trace_wanted = trace_opts.wanted;
    let trace = if trace_wanted || ctx.slowlog.sample() {
        Trace::active(
            trace_opts
                .trace_id
                .unwrap_or_else(|| next_trace_id(req.op_label())),
        )
    } else {
        Trace::noop()
    };

    // Query work goes through the bounded pool: the admission point.
    let (tx, rx) = mpsc::channel::<String>();
    let deadline = started + ctx.deadline;
    let job_ctx = JobCtx {
        cell: ctx.cell.clone(),
        search_metrics: ctx.search_metrics.clone(),
        registry: ctx.registry.clone(),
        ingest: ctx.ingest.clone(),
        max_query_len: ctx.max_query_len,
        max_parallelism: ctx.max_parallelism,
        deadline,
        proto_version,
        trace,
        trace_wanted,
        slowlog: ctx.slowlog.clone(),
    };
    let job = Box::new(move || {
        let resp = if Instant::now() > deadline {
            job_ctx.registry.counter("server.deadline_exceeded").incr();
            error_response(
                ErrorCode::DeadlineExceeded,
                "deadline expired before a worker was available",
            )
        } else {
            run_timed(&job_ctx, req, started)
        };
        let _ = tx.send(resp);
    });

    let resp = match pool.try_submit(job) {
        Ok(()) => {
            ctx.registry.counter("server.accepted").incr();
            match rx.recv() {
                Ok(resp) => resp,
                // Worker panicked mid-query (sender dropped); the pool
                // survives, this request does not.
                Err(_) => {
                    ctx.registry.counter("server.internal_errors").incr();
                    error_response(ErrorCode::Internal, "query execution failed")
                }
            }
        }
        Err(SubmitError::Overloaded) => {
            ctx.registry.counter("server.rejected_overload").incr();
            error_response(
                ErrorCode::Overloaded,
                "request queue is full; retry with backoff",
            )
        }
        Err(SubmitError::ShuttingDown) => {
            ctx.registry.counter("server.rejected_shutdown").incr();
            error_response(ErrorCode::ShuttingDown, "server is draining")
        }
    };
    let resp = clamp_oversized(resp, &ctx.registry);
    ctx.registry
        .histogram("server.request_ns")
        .record(started.elapsed().as_nanos() as u64);
    respond(stream, &resp)
}

/// Replaces a response too large for one frame with a typed error.
/// Without this, `write_frame` rejects the oversized payload, the
/// connection closes, and the client only sees "closed mid-request" —
/// a broad search (large ε over a big corpus) must fail *explainably*.
fn clamp_oversized(resp: String, registry: &MetricsRegistry) -> String {
    if resp.len() <= proto::MAX_FRAME as usize {
        return resp;
    }
    registry.counter("server.result_too_large").incr();
    error_response(
        ErrorCode::ResultTooLarge,
        "serialized result exceeds the 4 MiB frame limit; narrow epsilon, lower max_len, or split the batch",
    )
}

fn respond(stream: &mut TcpStream, resp: &str) -> bool {
    write_frame(stream, resp.as_bytes()).is_ok() && stream.flush().is_ok()
}

fn control_response(req: &Request, ctx: &Ctx) -> String {
    match req {
        Request::Health => {
            let snap = ctx.cell.get();
            let quarantined = snap.quarantined.len();
            // Degraded is still *serving* — every answer over the
            // remaining segments is correct and labeled partial — but
            // operators watching health see the coverage loss.
            let status = if quarantined > 0 {
                "degraded"
            } else {
                "serving"
            };
            ok_response(
                "health",
                &format!(
                    "\"status\":\"{status}\",\"generation\":{},\"quarantined_segments\":{quarantined}",
                    snap.generation
                ),
            )
        }
        Request::Info => {
            let snap = ctx.cell.get();
            ok_response(
                "info",
                &format!(
                    "\"generation\":{},\"sequences\":{},\"values\":{},\"categories\":{},\"segments\":{},\"quarantined_segments\":{},\"workers\":{},\"queue_depth\":{},\"max_parallelism\":{}",
                    snap.generation,
                    snap.store.len(),
                    snap.store.total_len(),
                    snap.alphabet.len(),
                    snap.segment_count(),
                    snap.quarantined.len(),
                    ctx.workers,
                    ctx.queue_depth,
                    ctx.max_parallelism,
                ),
            )
        }
        Request::Stats => {
            // Sample the live fan-out right before snapshotting: the
            // gauge counts worker subthreads currently spawned by
            // parallel filter/post-processing regions process-wide.
            ctx.registry
                .gauge("server.worker_subthreads")
                .set(warptree_core::parallel::active_subthreads() as f64);
            // Refresh the degradation gauge from the *served* snapshot,
            // so stats reflect what queries actually see even if no
            // publish has run since the last quarantine.
            ctx.registry.set_gauge(
                "server.quarantined_segments",
                ctx.cell.get().quarantined.len() as f64,
            );
            ok_response(
                "stats",
                &format!("\"metrics\":{}", ctx.registry.snapshot().to_json()),
            )
        }
        Request::Slowlog => {
            ok_response("slowlog", &format!("\"entries\":{}", ctx.slowlog.to_json()))
        }
        Request::Metrics => {
            // Same gauge refresh as `stats`: the exposition must show
            // what queries see right now, not the last refresh.
            ctx.registry
                .gauge("server.worker_subthreads")
                .set(warptree_core::parallel::active_subthreads() as f64);
            ctx.registry.set_gauge(
                "server.quarantined_segments",
                ctx.cell.get().quarantined.len() as f64,
            );
            ok_response(
                "metrics",
                &format!(
                    "\"format\":\"prometheus-0.0.4\",\"exposition\":\"{}\"",
                    obs_json::escape(&ctx.registry.snapshot().to_prometheus())
                ),
            )
        }
        Request::Shutdown => {
            ctx.shutdown.store(true, Ordering::SeqCst);
            ok_response("shutdown", "\"draining\":true")
        }
        _ => unreachable!("non-control request routed to control_response"),
    }
}

/// The subset of context a queued job captures (no pool references — a
/// job must not be able to re-enter the queue).
struct JobCtx {
    cell: Arc<SnapshotCell>,
    search_metrics: SearchMetrics,
    registry: MetricsRegistry,
    ingest: Arc<IngestState>,
    max_query_len: usize,
    /// Cap applied to the request's `parallelism` knob.
    max_parallelism: u32,
    /// Absolute request deadline; checked at dequeue and between batch
    /// items (a single search is never interrupted mid-query).
    deadline: Instant,
    /// The protocol version the client negotiated. Versions below 3
    /// have no way to express `partial: true`, so a degraded answer
    /// for them becomes a typed `partial_result_unsupported` error
    /// instead of a silently truncated result.
    proto_version: u32,
    /// This request's trace handle — active when the client asked for
    /// a trace or the sampler picked the request, the no-op handle
    /// otherwise. Threaded through the whole funnel (filter spans,
    /// kNN rounds, pager I/O attribution).
    trace: Trace,
    /// Whether the *client* asked for the trace: client-requested
    /// traces come back inline in the response; sampler-only traces go
    /// to the slow-query ring alone.
    trace_wanted: bool,
    slowlog: Arc<SlowLog>,
}

/// Wraps [`execute`] with the server-side timing split: `queue_ns`
/// (admission → dequeue) vs. `service_ns` (dequeue → response built).
/// For v4 clients both land in a `"timings"` object on every ok
/// response, and a client-requested trace rides along as `"trace"`;
/// older clients get byte-identical responses to the pre-tracing
/// protocol. Completed requests are then offered to the slow-query
/// ring.
fn run_timed(job: &JobCtx, req: Request, admitted: Instant) -> String {
    let queue_ns = admitted.elapsed().as_nanos() as u64;
    job.registry.histogram("server.queue_ns").record(queue_ns);
    let op = req.op_label();
    let span = job.trace.span("server.service");
    if span.is_active() {
        span.attr_str("op", op);
        span.attr_u64("queue_ns", queue_ns);
    }
    let service_start = Instant::now();
    let mut resp = execute(job, req);
    drop(span);
    let service_ns = service_start.elapsed().as_nanos() as u64;
    job.registry
        .histogram("server.service_ns")
        .record(service_ns);
    if job.proto_version >= 4 && resp.starts_with("{\"ok\":true") && resp.ends_with('}') {
        resp.pop();
        resp.push_str(&format!(
            ",\"timings\":{{\"queue_ns\":{queue_ns},\"service_ns\":{service_ns}}}"
        ));
        if job.trace_wanted {
            if let Some(data) = job.trace.finish() {
                resp.push_str(&format!(",\"trace\":{}", data.to_json()));
            }
        }
        resp.push('}');
    }
    job.slowlog.offer(
        op,
        job.cell.get().generation,
        queue_ns.saturating_add(service_ns),
        queue_ns,
        &job.trace,
    );
    resp
}

/// Runs one query through the degraded fan-out path and applies the
/// server-side consequences of what it found:
///
/// * corrupt tail segments detected mid-query are quarantined (one
///   tombstone manifest generation each, then a republish) so later
///   requests skip them up front;
/// * partial answers are metered (`search.partial_queries`) and — for
///   pre-v3 clients that cannot express `partial: true` — converted to
///   a typed `partial_result_unsupported` error rather than being
///   passed off as complete;
/// * corruption in the base tree (no healthy replica to fall back on)
///   becomes a typed `corruption_detected` error.
///
/// On success the stats have already been folded into the shared
/// process-wide bundle; the returned copy is for per-request reporting
/// (`explain`). On failure the `Err` is the complete response string.
fn degraded_query(
    job: &JobCtx,
    snap: &DirSnapshot,
    req: &QueryRequest,
) -> Result<(QueryOutput, SearchStats), String> {
    match snap.run_query_degraded_traced(req, &job.trace) {
        Ok(dq) => {
            job.search_metrics.record(&dq.stats);
            if !dq.detected.is_empty() {
                quarantine_detected(job, &dq.detected);
            }
            if dq.output.is_partial() {
                job.registry.counter("search.partial_queries").incr();
                if job.proto_version < 3 {
                    job.registry.counter("server.bad_requests").incr();
                    return Err(error_response(
                        ErrorCode::PartialResultUnsupported,
                        "result is partial (segments quarantined) and this protocol version cannot express partial results; retry with version 3",
                    ));
                }
            }
            Ok((dq.output, dq.stats))
        }
        Err(DegradedError::Rejected(e)) => {
            job.registry.counter("server.bad_requests").incr();
            Err(proto::core_error_response(&e))
        }
        Err(DegradedError::Corrupt(e)) => {
            job.registry.counter("server.corruption_errors").incr();
            Err(error_response(
                ErrorCode::CorruptionDetected,
                &e.to_string(),
            ))
        }
    }
}

/// Tombstones segments a degraded query caught failing CRC: one
/// idempotent quarantine commit per segment, then a republish so the
/// serving snapshot stops fanning out to them. Best-effort — a failed
/// quarantine only means the *next* query re-detects and retries; the
/// current answer is already correct without the segment.
fn quarantine_detected(job: &JobCtx, detected: &[String]) {
    let st = &job.ingest;
    let _guard = st.lock_writer();
    let mut committed = false;
    for segment in detected {
        match quarantine_segment_with(st.vfs.as_ref(), &st.dir, segment) {
            Ok(_) => committed = true,
            Err(_) => job.registry.counter("server.quarantine_errors").incr(),
        }
    }
    if committed && st.publish().is_err() {
        job.registry.counter("server.quarantine_errors").incr();
    }
}

/// The `,"partial":…,"coverage":{…}` response suffix, present exactly
/// when the output carries coverage accounting (i.e. the index is
/// degraded); a clean index emits nothing and the response body is
/// byte-identical to the pre-degradation protocol.
fn coverage_suffix(out: &QueryOutput) -> String {
    match &out.coverage {
        Some(c) => format!(",{}", proto::encode_coverage(c)),
        None => String::new(),
    }
}

fn execute(job: &JobCtx, req: Request) -> String {
    // The write path never pins a snapshot — it *produces* one.
    let req = match req {
        Request::Ingest { sequences } => return execute_ingest(job, sequences),
        other => other,
    };
    // Pin one snapshot for the whole request.
    let snap = job.cell.get();
    let clamp = |t: u32| t.clamp(1, job.max_parallelism.max(1));
    // `Err` already carries the complete (typed, metered) error
    // response — produced by `degraded_query` or the batch fold.
    let result: Result<String, String> = match req {
        Request::Search { query, mut params } => {
            params.threads = clamp(params.threads);
            let req = QueryRequest::threshold_params(&query, params).capped(job.max_query_len);
            degraded_query(job, &snap, &req).map(|(out, _)| {
                let suffix = coverage_suffix(&out);
                ok_response(
                    "search",
                    &format!(
                        "{}{}",
                        search_body(&out.into_answer_set(), snap.generation),
                        suffix
                    ),
                )
            })
        }
        Request::Knn { query, mut params } => {
            params.threads = clamp(params.threads);
            let req = QueryRequest::knn_params(&query, params).capped(job.max_query_len);
            degraded_query(job, &snap, &req).map(|(out, _)| {
                let suffix = coverage_suffix(&out);
                let matches = out.into_ranked();
                ok_response(
                    "knn",
                    &format!(
                        "\"generation\":{},\"count\":{},\"matches\":{}{}",
                        snap.generation,
                        matches.len(),
                        proto::encode_matches_ranked(&matches),
                        suffix
                    ),
                )
            })
        }
        Request::Batch {
            queries,
            mut params,
        } => {
            // Satellite of the metrics work: the whole batch meters into
            // ONE shared bundle — `stats` sees batch totals, not the
            // last query's numbers.
            params.threads = clamp(params.threads);
            let total = queries.len();
            // One batch item's outcome, produced by a worker without
            // knowing the others' fates; the join below folds them back
            // in request order.
            enum Item {
                Body(String),
                Expired,
                /// A complete error response (already typed + metered).
                Fail(String),
            }
            let threads = params.threads as usize;
            let run_item = |query: &[f64], item_params: &warptree_core::search::SearchParams| {
                let req = QueryRequest::threshold_params(query, item_params.clone())
                    .capped(job.max_query_len);
                match degraded_query(job, &snap, &req) {
                    Ok((out, _)) => {
                        let suffix = coverage_suffix(&out);
                        Item::Body(format!(
                            "{{{}{}}}",
                            search_body(&out.into_answer_set(), snap.generation),
                            suffix
                        ))
                    }
                    Err(resp) => Item::Fail(resp),
                }
            };
            let items: Vec<Item> = if threads > 1 && total > 1 {
                // The parallelism budget is spent *across* items (the
                // coarsest grain available), so each item runs its own
                // search sequentially. Results are pinned by item index
                // — a slow first item never reorders the response.
                let mut item_params = params.clone();
                item_params.threads = 1;
                warptree_core::parallel::parallel_map(threads, queries, |_i, query| {
                    // The same between-items deadline checkpoint as the
                    // sequential path: checked before an item starts, a
                    // running search is never interrupted.
                    if Instant::now() > job.deadline {
                        return Item::Expired;
                    }
                    run_item(&query, &item_params)
                })
            } else {
                let mut out = Vec::with_capacity(total);
                for query in &queries {
                    // The deadline checkpoint between items: one batch
                    // can carry many searches, so this is where an
                    // admitted request can overstay its deadline by more
                    // than one query's worth of work.
                    if Instant::now() > job.deadline {
                        out.push(Item::Expired);
                        break;
                    }
                    match run_item(query, &params) {
                        fail @ Item::Fail(_) => {
                            out.push(fail);
                            break;
                        }
                        item => out.push(item),
                    }
                }
                out
            };
            // Fold in request order; the first expiry or error (lowest
            // index) wins, matching the sequential contract exactly.
            let mut results = String::from("[");
            let mut outcome = Ok(());
            for (i, item) in items.into_iter().enumerate() {
                match item {
                    Item::Body(body) => {
                        if i > 0 {
                            results.push(',');
                        }
                        results.push_str(&body);
                    }
                    Item::Expired => {
                        job.registry.counter("server.deadline_exceeded").incr();
                        return error_response(
                            ErrorCode::DeadlineExceeded,
                            &format!("deadline expired after {i} of {total} batch items"),
                        );
                    }
                    Item::Fail(e) => {
                        outcome = Err(e);
                        break;
                    }
                }
            }
            outcome.map(|()| {
                results.push(']');
                ok_response(
                    "batch",
                    &format!("\"generation\":{},\"results\":{}", snap.generation, results),
                )
            })
        }
        Request::Explain { query, mut params } => {
            params.threads = clamp(params.threads);
            // The degraded runner meters per-request stats internally
            // and returns the snapshot, so explain gets its counters
            // while the shared bundle still accumulates the totals.
            let req = QueryRequest::threshold_params(&query, params).capped(job.max_query_len);
            degraded_query(job, &snap, &req).map(|(out, stats)| {
                let suffix = coverage_suffix(&out);
                ok_response(
                    "explain",
                    &format!(
                        "{},\"stats\":{}{}",
                        search_body(&out.into_answer_set(), snap.generation),
                        encode_stats(&stats),
                        suffix
                    ),
                )
            })
        }
        Request::DebugSleep { ms } => {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(ok_response("debug_sleep", &format!("\"slept_ms\":{ms}")))
        }
        control => unreachable!("control op {control:?} reached a worker"),
    };
    match result {
        Ok(resp) => {
            job.registry.counter("server.requests_ok").incr();
            resp
        }
        // Already a complete response; the failure was metered where it
        // was classified (bad request vs. corruption vs. partial).
        Err(resp) => resp,
    }
}

/// The `ingest` op: appends the sequences as one new tail segment
/// (crash-safe generational commit), then synchronously reopens and
/// publishes the new snapshot *before* responding — a client that gets
/// `ok` can immediately query its own writes on any connection.
fn execute_ingest(job: &JobCtx, sequences: Vec<Vec<f64>>) -> String {
    let started = Instant::now();
    let st = &job.ingest;
    let count = sequences.len();
    let store = SequenceStore::from_values(sequences);
    let _guard = st.lock_writer();
    let committed = match append_segment_with(st.vfs.as_ref(), &st.dir, &store) {
        Ok(manifest) => manifest,
        Err(DiskError::BadRecord(msg)) => {
            job.registry.counter("server.bad_requests").incr();
            return error_response(ErrorCode::BadRequest, &msg);
        }
        Err(e) => {
            job.registry.counter("server.internal_errors").incr();
            return error_response(ErrorCode::Internal, &format!("ingest failed: {e}"));
        }
    };
    match st.publish() {
        Ok(snap) => {
            job.registry.counter("server.requests_ok").incr();
            job.registry
                .counter("server.ingested_sequences")
                .add(count as u64);
            job.registry
                .histogram("server.ingest_ns")
                .record(started.elapsed().as_nanos() as u64);
            ok_response(
                "ingest",
                &format!(
                    "\"generation\":{},\"sequences\":{},\"segments\":{}",
                    committed.generation,
                    count,
                    snap.segment_count()
                ),
            )
        }
        // The commit is durable either way; only this process's view
        // failed to refresh (the reload watcher will retry).
        Err(e) => {
            job.registry.counter("server.internal_errors").incr();
            error_response(
                ErrorCode::Internal,
                &format!(
                    "ingest committed generation {} but reopen failed: {e}",
                    committed.generation
                ),
            )
        }
    }
}

fn search_body(answers: &AnswerSet, generation: u64) -> String {
    format!(
        "\"generation\":{},\"count\":{},\"matches\":{}",
        generation,
        answers.len(),
        proto::encode_matches(answers.matches())
    )
}

fn encode_stats(s: &SearchStats) -> String {
    format!(
        "{{\"filter_cells\":{},\"nodes_visited\":{},\"nodes_expanded\":{},\"rows_pushed\":{},\"rows_unshared\":{},\"branches_pruned\":{},\"candidates\":{},\"stored_candidates\":{},\"lb2_candidates\":{},\"postprocessed\":{},\"postprocess_cells\":{},\"false_alarms\":{},\"answers\":{},\"cascade_lb_keogh_kills\":{},\"cascade_lb_improved_kills\":{},\"cascade_abandon_kills\":{}}}",
        s.filter_cells,
        s.nodes_visited,
        s.nodes_expanded,
        s.rows_pushed,
        s.rows_unshared,
        s.branches_pruned,
        s.candidates,
        s.stored_candidates,
        s.lb2_candidates,
        s.postprocessed,
        s.postprocess_cells,
        s.false_alarms,
        s.answers,
        s.cascade_lb_keogh_kills,
        s.cascade_lb_improved_kills,
        s.cascade_abandon_kills,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use warptree_core::categorize::Alphabet;
    use warptree_core::search::SearchParams;
    use warptree_core::sequence::SequenceStore;
    use warptree_disk::{build_dir_with, TreeKind};

    #[test]
    fn oversized_responses_become_typed_errors() {
        let registry = MetricsRegistry::new();
        let small = clamp_oversized("{\"ok\":true}".to_string(), &registry);
        assert_eq!(small, "{\"ok\":true}");

        let clamped = clamp_oversized("x".repeat(proto::MAX_FRAME as usize + 1), &registry);
        assert!(
            clamped.contains("\"code\":\"result_too_large\""),
            "{clamped}"
        );
        assert!(clamped.len() <= proto::MAX_FRAME as usize);
        assert_eq!(
            registry
                .snapshot()
                .counters
                .get("server.result_too_large")
                .copied(),
            Some(1)
        );
    }

    fn test_job_ctx(dir: &Path, deadline: Instant) -> (JobCtx, MetricsRegistry) {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]]);
        let alphabet = Alphabet::equal_length(&store, 3).unwrap();
        build_dir_with(
            real_vfs(),
            &store,
            &alphabet,
            TreeKind::Full,
            1,
            1,
            None,
            dir,
        )
        .unwrap();
        let snap = open_dir_snapshot_with(real_vfs().as_ref(), dir, 16, 64).unwrap();
        let registry = MetricsRegistry::new();
        let cell = Arc::new(SnapshotCell::new(Arc::new(snap)));
        let slowlog = Arc::new(SlowLog::new(&ServerConfig::default(), registry.clone()));
        let ingest = Arc::new(IngestState {
            vfs: real_vfs(),
            dir: dir.to_path_buf(),
            writer: Mutex::new(()),
            cell: cell.clone(),
            registry: registry.clone(),
            cache_pages: 16,
            cache_nodes: 64,
            slowlog: slowlog.clone(),
        });
        let job = JobCtx {
            cell,
            search_metrics: SearchMetrics::register(&registry),
            registry: registry.clone(),
            ingest,
            max_query_len: 64,
            max_parallelism: 8,
            deadline,
            proto_version: 3,
            trace: Trace::noop(),
            trace_wanted: false,
            slowlog,
        };
        (job, registry)
    }

    #[test]
    fn batch_deadline_checkpoint_fires_between_items() {
        let dir =
            std::env::temp_dir().join(format!("warptree-unit-batchdl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let expired = Instant::now()
            .checked_sub(Duration::from_millis(10))
            .unwrap();
        let (job, registry) = test_job_ctx(&dir, expired);
        let req = Request::Batch {
            queries: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            params: SearchParams::with_epsilon(1.0),
        };
        let resp = execute(&job, req.clone());
        assert!(resp.contains("\"code\":\"deadline_exceeded\""), "{resp}");
        assert_eq!(
            registry
                .snapshot()
                .counters
                .get("server.deadline_exceeded")
                .copied(),
            Some(1)
        );

        // A live deadline serves the whole batch normally.
        job_with_live_deadline(job, req);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn job_with_live_deadline(mut job: JobCtx, req: Request) {
        job.deadline = Instant::now() + Duration::from_secs(60);
        let resp = execute(&job, req);
        assert!(resp.contains("\"ok\":true"), "{resp}");
    }

    /// The batch-ordering satellite: with parallel execution, results
    /// are pinned by request index, not completion order. The first
    /// item is the slowest by construction (longest query over the
    /// whole corpus at a broad ε), so completion order ≠ request order
    /// — yet the response must be byte-identical to the sequential one.
    #[test]
    fn parallel_batch_preserves_request_order() {
        let dir =
            std::env::temp_dir().join(format!("warptree-unit-batchord-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let live = Instant::now() + Duration::from_secs(60);
        let (job, _registry) = test_job_ctx(&dir, live);

        // Item 0 carries far more verification work than the rest.
        let queries = vec![
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 5.0, 4.0, 3.0, 2.0],
            vec![1.0],
            vec![6.0],
            vec![3.0, 4.0],
        ];
        let sequential = execute(
            &job,
            Request::Batch {
                queries: queries.clone(),
                params: SearchParams::with_epsilon(10.0),
            },
        );
        assert!(sequential.contains("\"ok\":true"), "{sequential}");
        for threads in [2u32, 8] {
            let parallel = execute(
                &job,
                Request::Batch {
                    queries: queries.clone(),
                    params: SearchParams::with_epsilon(10.0).parallel(threads),
                },
            );
            assert_eq!(sequential, parallel, "threads={threads}");
        }
        // A request asking for more than the server cap is clamped, not
        // rejected — and still answers identically.
        let mut capped = job;
        capped.max_parallelism = 2;
        let clamped = execute(
            &capped,
            Request::Batch {
                queries,
                params: SearchParams::with_epsilon(10.0).parallel(64),
            },
        );
        assert_eq!(sequential, clamped);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A request pinned to the wrong backend family fails with the
    /// typed `unsupported_backend` code; pinned to the right family it
    /// answers exactly like an unpinned request.
    #[test]
    fn pinned_backend_mismatch_is_a_typed_error() {
        use warptree_core::search::{BackendKind, KnnParams};
        let dir =
            std::env::temp_dir().join(format!("warptree-unit-backendpin-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let live = Instant::now() + Duration::from_secs(60);
        // test_job_ctx builds a tree-backed directory.
        let (job, registry) = test_job_ctx(&dir, live);

        let resp = execute(
            &job,
            Request::Search {
                query: vec![1.0, 2.0],
                params: SearchParams::with_epsilon(1.0).on_backend(BackendKind::Esa),
            },
        );
        assert!(resp.contains("\"code\":\"unsupported_backend\""), "{resp}");
        assert_eq!(
            registry
                .snapshot()
                .counters
                .get("server.bad_requests")
                .copied(),
            Some(1)
        );
        let resp = execute(
            &job,
            Request::Knn {
                query: vec![1.0, 2.0],
                params: KnnParams::new(1).on_backend(BackendKind::Esa),
            },
        );
        assert!(resp.contains("\"code\":\"unsupported_backend\""), "{resp}");

        // The matching pin answers byte-identically to no pin at all.
        let unpinned = execute(
            &job,
            Request::Search {
                query: vec![1.0, 2.0],
                params: SearchParams::with_epsilon(1.0),
            },
        );
        let pinned = execute(
            &job,
            Request::Search {
                query: vec![1.0, 2.0],
                params: SearchParams::with_epsilon(1.0).on_backend(BackendKind::Tree),
            },
        );
        assert!(unpinned.contains("\"ok\":true"), "{unpinned}");
        assert_eq!(unpinned, pinned);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A deadline that expires mid-batch surfaces the same typed error
    /// from the parallel path as from the sequential one.
    #[test]
    fn parallel_batch_still_honours_deadline() {
        let dir =
            std::env::temp_dir().join(format!("warptree-unit-batchpdl-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let expired = Instant::now()
            .checked_sub(Duration::from_millis(10))
            .unwrap();
        let (job, registry) = test_job_ctx(&dir, expired);
        let resp = execute(
            &job,
            Request::Batch {
                queries: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
                params: SearchParams::with_epsilon(1.0).parallel(4),
            },
        );
        assert!(resp.contains("\"code\":\"deadline_exceeded\""), "{resp}");
        assert_eq!(
            registry
                .snapshot()
                .counters
                .get("server.deadline_exceeded")
                .copied(),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
