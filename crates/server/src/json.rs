//! A minimal JSON **parser** for the wire protocol.
//!
//! The workspace has no serde (offline build); `warptree-obs` already
//! hand-rolls JSON *emission* ([`warptree_obs::json`]) and this module
//! adds the other direction: a small recursive-descent parser producing
//! a [`Json`] value tree. It accepts standard JSON (RFC 8259) with two
//! deliberate serving-oriented restrictions: nesting depth is capped
//! (stack safety against adversarial frames) and numbers are parsed as
//! `f64` (every field the protocol defines fits).

use std::collections::BTreeMap;

/// Maximum nesting depth accepted by the parser. Protocol messages are
/// at most ~3 levels deep; the cap exists so a hostile frame of ten
/// thousand `[` cannot overflow the parse stack.
pub const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (keys sorted; duplicate keys keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric value as a `u64`, if this is a non-negative integer
    /// small enough to round-trip through `f64` exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => Some(*v as u64),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Renders the value back to JSON text: keys in sorted (`BTreeMap`)
    /// order, numbers through the shared shortest-round-trip formatter
    /// ([`warptree_obs::json::num`]), strings re-escaped. Parsing and
    /// re-rendering is stable, which is what lets a coordinator embed a
    /// shard's parsed sub-objects (span trees) in its own output.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(v) => warptree_obs::json::num(*v),
            Json::Str(s) => format!("\"{}\"", warptree_obs::json::escape(s)),
            Json::Arr(items) => {
                let mut out = String::from("[");
                for (i, x) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&x.render());
                }
                out.push(']');
                out
            }
            Json::Obj(map) => {
                let mut out = String::from("{");
                for (i, (k, x)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "\"{}\":{}",
                        warptree_obs::json::escape(k),
                        x.render()
                    ));
                }
                out.push('}');
                out
            }
        }
    }
}

/// Parses `input` as a single JSON value (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected {:?} at byte {}",
                char::from(c),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        let v: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if !v.is_finite() {
            return Err(format!("non-finite number {text:?} at byte {start}"));
        }
        Ok(Json::Num(v))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates (and only surrogates) are not
                            // scalar values; map them to U+FFFD rather
                            // than implementing pair decoding the
                            // protocol never emits.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8; find the char boundary).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|_| "bad utf-8")?;
                    let c = rest.chars().next().expect("non-empty");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {}", self.pos));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v =
            parse(r#"{"op":"search","query":[1.0,-2.5,3e2],"epsilon":0.5,"window":null}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("search"));
        let q: Vec<f64> = v
            .get("query")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(q, vec![1.0, -2.5, 300.0]);
        assert_eq!(v.get("epsilon").and_then(Json::as_f64), Some(0.5));
        assert_eq!(v.get("window"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_obs_snapshot_json() {
        // The parser must read what `warptree-obs` emits (the `stats`
        // response embeds a MetricsSnapshot verbatim).
        let reg = warptree_obs::MetricsRegistry::new();
        reg.counter("a.count").add(7);
        reg.set_gauge("b.rate", 0.5);
        reg.histogram("c.ns").record(100);
        let v = parse(&reg.snapshot().to_json()).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.count"))
                .and_then(Json::as_u64),
            Some(7)
        );
        assert_eq!(
            v.get("gauges")
                .and_then(|g| g.get("b.rate"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
    }

    #[test]
    fn escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\ndAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":1}extra",
            "NaN",
            "1e999", // overflows to infinity — rejected as non-finite
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
        // Depth bomb: rejected, not a stack overflow.
        let bomb = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(parse(&bomb).is_err());
    }

    #[test]
    fn render_round_trips() {
        for text in [
            "null",
            "true",
            "[1,2.5,-3]",
            r#"{"a":[{"b":"x\"y"},null],"c":0.75}"#,
            r#"{"spans":[{"attrs":{"op":"search"},"dur_ns":12}]}"#,
        ] {
            let v = parse(text).unwrap();
            let rendered = v.render();
            assert_eq!(parse(&rendered).unwrap(), v, "{text}");
        }
        // Rendering is a fixed point: parse(render(v)) renders the same.
        let v = parse(r#"{"z":1,"a":[true,"s"]}"#).unwrap();
        assert_eq!(parse(&v.render()).unwrap().render(), v.render());
    }

    #[test]
    fn u64_accessor_checks_integrality() {
        assert_eq!(parse("5").unwrap().as_u64(), Some(5));
        assert_eq!(parse("5.5").unwrap().as_u64(), None);
        assert_eq!(parse("-5").unwrap().as_u64(), None);
    }
}
