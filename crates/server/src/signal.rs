//! SIGINT / SIGTERM → shutdown flag, with no external crates.
//!
//! The handler does the only async-signal-safe thing possible: store
//! into a `static` [`AtomicBool`]. The serve loop polls the flag and
//! performs the actual graceful drain from normal thread context.
//!
//! On non-Unix targets installation is a no-op (the flag simply never
//! fires); the server is still fully usable via the `shutdown` protocol
//! op.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGINT or SIGTERM has been received (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Sets the flag by hand — used by the protocol `shutdown` op and by
/// tests.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Resets the flag (tests only; a real process shuts down once).
pub fn reset_for_tests() {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::{c_int, c_void};
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;
    /// POSIX `SIG_ERR` is `(void (*)(int))-1`; on every platform Rust
    /// supports, pointers round-trip through `usize`, so `-1` as a
    /// pointer is `usize::MAX`.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        // POSIX `signal(2)`. The workspace builds offline with no libc
        // crate, so we declare the one symbol we need. `usize` stands
        // in for the handler function pointer / SIG_DFL / SIG_ERR —
        // valid because function pointers and `usize` have the same
        // size and a lossless round-trip on all supported targets.
        //
        // Portability note: we deliberately use `signal` rather than
        // hand-rolling the `sigaction` struct ABI (whose layout varies
        // per target and would be far riskier without libc). On
        // Linux/glibc and the BSDs, `signal` gives BSD semantics — the
        // handler stays installed after delivery and interrupted
        // syscalls restart. On a System V-semantics libc the handler
        // would reset to default after the first signal; for a
        // *shutdown* handler that is acceptable: the first signal
        // already starts the drain, and a second then terminates the
        // process — the conventional "impatient operator" escalation.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only async-signal-safe operation: an atomic store.
        super::SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() -> bool {
        let handler = on_signal as extern "C" fn(c_int) as *const c_void as usize;
        // Install both even if the first fails, and report failure to
        // the caller instead of silently serving without handlers.
        let int_ok = unsafe { signal(SIGINT, handler) } != SIG_ERR;
        let term_ok = unsafe { signal(SIGTERM, handler) } != SIG_ERR;
        int_ok && term_ok
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() -> bool {
        false
    }
}

/// Installs handlers for SIGINT and SIGTERM that set the shutdown flag.
/// Safe to call more than once. Returns `false` when one or both
/// handlers could not be installed (or on non-Unix targets, where
/// installation is a no-op) — the server still runs, but only the
/// protocol `shutdown` op can trigger a graceful drain.
pub fn install_handlers() -> bool {
    imp::install()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installation_succeeds_and_is_idempotent() {
        assert!(install_handlers());
        assert!(install_handlers());
    }
}
