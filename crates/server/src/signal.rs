//! SIGINT / SIGTERM → shutdown flag, with no external crates.
//!
//! The handler does the only async-signal-safe thing possible: store
//! into a `static` [`AtomicBool`]. The serve loop polls the flag and
//! performs the actual graceful drain from normal thread context.
//!
//! On non-Unix targets installation is a no-op (the flag simply never
//! fires); the server is still fully usable via the `shutdown` protocol
//! op.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN_REQUESTED: AtomicBool = AtomicBool::new(false);

/// `true` once SIGINT or SIGTERM has been received (or
/// [`request_shutdown`] was called).
pub fn shutdown_requested() -> bool {
    SHUTDOWN_REQUESTED.load(Ordering::SeqCst)
}

/// Sets the flag by hand — used by the protocol `shutdown` op and by
/// tests.
pub fn request_shutdown() {
    SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
}

/// Resets the flag (tests only; a real process shuts down once).
pub fn reset_for_tests() {
    SHUTDOWN_REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use std::os::raw::{c_int, c_void};
    use std::sync::atomic::Ordering;

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    extern "C" {
        // POSIX `signal(2)`. The workspace builds offline with no libc
        // crate, so we declare the one symbol we need. `usize` stands
        // in for the handler function pointer / SIG_DFL / SIG_ERR.
        fn signal(signum: c_int, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: c_int) {
        // Only async-signal-safe operation: an atomic store.
        super::SHUTDOWN_REQUESTED.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        unsafe {
            let handler = on_signal as extern "C" fn(c_int) as *const c_void as usize;
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs handlers for SIGINT and SIGTERM that set the shutdown flag.
/// Safe to call more than once.
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_round_trips() {
        reset_for_tests();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset_for_tests();
        assert!(!shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn handler_installation_does_not_crash() {
        install_handlers();
        install_handlers();
    }
}
