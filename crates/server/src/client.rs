//! A blocking protocol client.
//!
//! One [`Client`] wraps one TCP connection and issues framed requests
//! sequentially. It is intentionally simple — the unit of concurrency
//! is the connection, so a load generator opens many clients.

use std::fmt;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use crate::json::{self, Json};
use crate::proto::{read_frame, write_frame};

/// What a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-exchange).
    Io(io::Error),
    /// The server's bytes were not a valid protocol response.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// The wire error code (e.g. `"overloaded"`).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The wire code, when this is a typed server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }

    /// Whether retrying the same request may succeed: `overloaded`
    /// rejections (the server asked for backoff), transport failures,
    /// and a connection torn mid-exchange. Typed application errors
    /// (`bad_request`, `corruption_detected`, …) are deterministic and
    /// never retried.
    pub fn is_transient(&self) -> bool {
        match self {
            ClientError::Io(_) => true,
            ClientError::Server { code, .. } => code == "overloaded",
            ClientError::Protocol(msg) => msg.contains("connection closed"),
        }
    }
}

/// Backoff policy for [`Client::request_with_retry`]: capped
/// exponential backoff with full jitter (each sleep is uniform in
/// `[0, min(base·2^attempt, max_backoff))` — jitter decorrelates a
/// thundering herd of clients all rejected by the same overload).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries = 3` allows
    /// up to 4 sends).
    pub max_retries: u32,
    /// Backoff cap for the first retry.
    pub base: Duration,
    /// Upper bound on any single backoff sleep.
    pub max_backoff: Duration,
    /// Total budget measured from the first attempt; a retry whose
    /// backoff would overrun it fails immediately with the last error
    /// instead of sleeping past the deadline.
    pub deadline: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(25),
            max_backoff: Duration::from_secs(1),
            deadline: None,
        }
    }
}

/// A self-contained xorshift64* step — no RNG dependency, and bench
/// threads each seed from the clock so their jitter decorrelates.
fn next_jitter(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545F4914F6CDD1D)
}

fn jitter_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x9E37_79B9_7F4A_7C15)
        | 1 // xorshift must not start at zero
}

/// A blocking connection to a warptree server.
pub struct Client {
    stream: TcpStream,
    /// Remembered for [`Client::reconnect`] after a transport failure.
    peer: Option<SocketAddr>,
    timeout: Option<Duration>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let peer = stream.peer_addr().ok();
        Ok(Client {
            stream,
            peer,
            timeout: None,
        })
    }

    /// Sets the per-response read timeout (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.timeout = timeout;
        self.stream.set_read_timeout(timeout)
    }

    /// Re-dials the peer this client was connected to, preserving the
    /// configured timeout. Used by the retry path after a transport
    /// error leaves the old socket unusable.
    pub fn reconnect(&mut self) -> io::Result<()> {
        let peer = self
            .peer
            .ok_or_else(|| io::Error::other("peer address unknown; cannot reconnect"))?;
        let stream = TcpStream::connect(peer)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(self.timeout)?;
        self.stream = stream;
        Ok(())
    }

    /// [`Client::request`] with retries on transient failures
    /// ([`ClientError::is_transient`]): `overloaded` rejections back
    /// off with full jitter, transport errors reconnect first. Hard
    /// (typed, deterministic) errors return immediately; the policy's
    /// deadline bounds the total time spent, sleeps included.
    pub fn request_with_retry(
        &mut self,
        body: &str,
        policy: &RetryPolicy,
    ) -> Result<Json, ClientError> {
        let started = Instant::now();
        let mut rng = jitter_seed();
        let mut attempt: u32 = 0;
        loop {
            let err = match self.request(body) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => e,
                Err(e) => return Err(e),
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            // Full jitter: uniform in [0, min(base·2^attempt, max)).
            let cap = policy
                .base
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.max_backoff)
                .max(Duration::from_nanos(1));
            let sleep = Duration::from_nanos(next_jitter(&mut rng) % cap.as_nanos() as u64);
            if let Some(budget) = policy.deadline {
                if started.elapsed() + sleep >= budget {
                    return Err(err);
                }
            }
            std::thread::sleep(sleep);
            // A dead socket fails every future request on this
            // connection; re-dial before retrying. Reconnect failure is
            // itself transient (the server may be restarting), so it
            // just consumes this attempt.
            if !matches!(err, ClientError::Server { .. }) {
                let _ = self.reconnect();
            }
            attempt += 1;
        }
    }

    /// Sends `body` (a JSON request object) and returns the **raw**
    /// response text — error frames included. The bench harness and
    /// byte-equivalence tests want the exact bytes.
    pub fn request_raw(&mut self, body: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, body.as_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("connection closed mid-request".to_string()))?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))
    }

    /// Sends `body` and parses the response, converting error frames
    /// into [`ClientError::Server`].
    pub fn request(&mut self, body: &str) -> Result<Json, ClientError> {
        let text = self.request_raw(body)?;
        let v = json::parse(&text).map_err(ClientError::Protocol)?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error");
                let code = err
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                let message = err
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Err(ClientError::Server { code, message })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".to_string())),
        }
    }

    /// ε-threshold search.
    pub fn search(
        &mut self,
        query: &[f64],
        epsilon: f64,
        window: Option<u32>,
    ) -> Result<Json, ClientError> {
        self.request(&search_request(query, epsilon, window))
    }

    /// k-NN search with default expansion parameters.
    pub fn knn(&mut self, query: &[f64], k: usize) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"knn\",\"version\":3,\"query\":{},\"k\":{k}}}",
            encode_query(query)
        ))
    }

    /// Appends sequences to the served index as one new tail segment
    /// (protocol version 2). On `Ok` the new generation is already
    /// published — follow-up queries on any connection see the data.
    pub fn ingest(&mut self, sequences: &[Vec<f64>]) -> Result<Json, ClientError> {
        self.request(&ingest_request(sequences))
    }

    /// ε-threshold search with an end-to-end trace (protocol version
    /// 4): the response carries `"timings"` and the full span tree
    /// under `"trace"`. `trace_id` is optional — the server mints one
    /// when absent.
    pub fn search_traced(
        &mut self,
        query: &[f64],
        epsilon: f64,
        trace_id: Option<&str>,
    ) -> Result<Json, ClientError> {
        self.request(&traced_search_request(query, epsilon, trace_id))
    }

    /// The server's slow-query ring, newest entry first (protocol
    /// version 4).
    pub fn slowlog(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"slowlog\",\"version\":4}")
    }

    /// The Prometheus text exposition, as a JSON-escaped string under
    /// `"exposition"` (protocol version 4).
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"metrics\",\"version\":4}")
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"health\"}")
    }

    /// Index metadata.
    pub fn info(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"info\"}")
    }

    /// Process metrics snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"stats\"}")
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"shutdown\"}")
    }
}

/// A pooled, self-healing connection to one server address.
///
/// [`Client`] wraps one live TCP connection; `ShardConn` wraps an
/// *address*: the socket is dialed lazily on first use and dropped on
/// transport failure, so the next request re-dials fresh instead of
/// failing forever on a dead connection. Dial failures and torn
/// connections are tallied in [`ShardConn::conn_failures`]. This is
/// the reconnect logic the bench loop used to carry inline, promoted
/// so the load generator and the shard coordinator share one copy.
pub struct ShardConn {
    addr: String,
    timeout: Option<Duration>,
    client: Option<Client>,
    conn_failures: u64,
}

impl ShardConn {
    /// Wraps `addr` without dialing; the first request connects.
    pub fn new(addr: impl Into<String>) -> ShardConn {
        ShardConn {
            addr: addr.into(),
            timeout: None,
            client: None,
            conn_failures: 0,
        }
    }

    /// [`ShardConn::new`] with a per-response read timeout applied to
    /// every (re)dialed connection.
    pub fn with_timeout(addr: impl Into<String>, timeout: Option<Duration>) -> ShardConn {
        let mut conn = ShardConn::new(addr);
        conn.timeout = timeout;
        conn
    }

    /// The address this connection (re)dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Dial failures plus connections lost mid-exchange so far.
    pub fn conn_failures(&self) -> u64 {
        self.conn_failures
    }

    /// Whether a (believed) live socket is currently held.
    pub fn is_connected(&self) -> bool {
        self.client.is_some()
    }

    /// Drops the current socket; the next request re-dials.
    pub fn disconnect(&mut self) {
        self.client = None;
    }

    fn ensure(&mut self) -> Result<&mut Client, ClientError> {
        if self.client.is_none() {
            match Client::connect(&self.addr) {
                Ok(mut c) => {
                    c.set_timeout(self.timeout).ok();
                    self.client = Some(c);
                }
                Err(e) => {
                    self.conn_failures += 1;
                    return Err(ClientError::Io(e));
                }
            }
        }
        Ok(self.client.as_mut().expect("dialed above"))
    }

    /// Whether `err` means the held socket is unusable (as opposed to a
    /// typed server error on a healthy connection).
    fn is_torn(err: &ClientError) -> bool {
        err.is_transient() && err.code().is_none()
    }

    /// One request attempt: dial if needed, send, and on a transport
    /// failure drop the socket (counted) so the next call re-dials. No
    /// retries — per-request accounting stays exact for load
    /// generation; use [`ShardConn::request_with_retry`] when the
    /// caller wants the policy-driven loop.
    pub fn request(&mut self, body: &str) -> Result<Json, ClientError> {
        let result = self.ensure()?.request(body);
        if let Err(ref e) = result {
            if Self::is_torn(e) {
                self.conn_failures += 1;
                self.client = None;
            }
        }
        result
    }

    /// [`ShardConn::request`] returning the raw response text (error
    /// frames included), for byte-equivalence callers.
    pub fn request_raw(&mut self, body: &str) -> Result<String, ClientError> {
        let result = self.ensure()?.request_raw(body);
        if let Err(ref e) = result {
            if Self::is_torn(e) {
                self.conn_failures += 1;
                self.client = None;
            }
        }
        result
    }

    /// [`ShardConn::request`] with retries on transient failures under
    /// `policy`: `overloaded` rejections back off with full jitter,
    /// transport errors re-dial (lazily, on the next attempt). Hard
    /// typed errors return immediately; the policy's deadline bounds
    /// the total time spent, sleeps included.
    pub fn request_with_retry(
        &mut self,
        body: &str,
        policy: &RetryPolicy,
    ) -> Result<Json, ClientError> {
        let started = Instant::now();
        let mut rng = jitter_seed();
        let mut attempt: u32 = 0;
        loop {
            let err = match self.request(body) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() => e,
                Err(e) => return Err(e),
            };
            if attempt >= policy.max_retries {
                return Err(err);
            }
            let cap = policy
                .base
                .saturating_mul(1u32 << attempt.min(16))
                .min(policy.max_backoff)
                .max(Duration::from_nanos(1));
            let sleep = Duration::from_nanos(next_jitter(&mut rng) % cap.as_nanos() as u64);
            if let Some(budget) = policy.deadline {
                if started.elapsed() + sleep >= budget {
                    return Err(err);
                }
            }
            std::thread::sleep(sleep);
            attempt += 1;
        }
    }
}

/// Renders a query as a JSON number array (shared by client and bench).
pub fn encode_query(query: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in query.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&warptree_obs::json::num(*v));
    }
    out.push(']');
    out
}

/// Builds a `search` request body. Declares protocol version 3, so a
/// degraded server answers with an honest `partial: true` + coverage
/// instead of refusing the request.
pub fn search_request(query: &[f64], epsilon: f64, window: Option<u32>) -> String {
    match window {
        Some(w) => format!(
            "{{\"op\":\"search\",\"version\":3,\"query\":{},\"epsilon\":{},\"window\":{w}}}",
            encode_query(query),
            warptree_obs::json::num(epsilon)
        ),
        None => format!(
            "{{\"op\":\"search\",\"version\":3,\"query\":{},\"epsilon\":{}}}",
            encode_query(query),
            warptree_obs::json::num(epsilon)
        ),
    }
}

/// Builds a version-4 `search` request: same body as
/// [`search_request`] but declaring protocol version 4, so the
/// response carries the `"timings"` queue/service split; with
/// `"trace": true` the server returns the span tree inline.
pub fn traced_search_request(query: &[f64], epsilon: f64, trace_id: Option<&str>) -> String {
    let id = match trace_id {
        Some(id) => format!(",\"trace_id\":\"{}\"", warptree_obs::json::escape(id)),
        None => String::new(),
    };
    format!(
        "{{\"op\":\"search\",\"version\":4,\"query\":{},\"epsilon\":{},\"trace\":true{id}}}",
        encode_query(query),
        warptree_obs::json::num(epsilon)
    )
}

/// Builds a version-4 `search` request *without* asking for a trace:
/// result bytes match the v3 response, plus the `"timings"` object the
/// bench harness uses to split queue wait from service time.
pub fn search_request_v4(query: &[f64], epsilon: f64, window: Option<u32>) -> String {
    let body = search_request(query, epsilon, window);
    body.replacen("\"version\":3", "\"version\":4", 1)
}

/// Builds an `ingest` request body (protocol version 2).
pub fn ingest_request(sequences: &[Vec<f64>]) -> String {
    let mut out = String::from("{\"op\":\"ingest\",\"version\":2,\"sequences\":[");
    for (i, seq) in sequences.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&encode_query(seq));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bodies_are_valid_json() {
        let body = search_request(&[1.0, -2.5], 0.75, Some(3));
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("search"));
        assert_eq!(v.get("window").and_then(Json::as_u64), Some(3));
        let nowin = search_request(&[1.0], 0.5, None);
        assert!(json::parse(&nowin).unwrap().get("window").is_none());
    }

    #[test]
    fn ingest_body_round_trips_through_parse() {
        let body = ingest_request(&[vec![1.0, 2.5], vec![-3.0]]);
        let parsed = crate::proto::Request::parse(body.as_bytes(), false).unwrap();
        assert_eq!(
            parsed,
            crate::proto::Request::Ingest {
                sequences: vec![vec![1.0, 2.5], vec![-3.0]]
            }
        );
    }

    #[test]
    fn transient_classification_drives_retries() {
        let server = |code: &str| ClientError::Server {
            code: code.to_string(),
            message: String::new(),
        };
        assert!(ClientError::Io(io::Error::other("reset")).is_transient());
        assert!(server("overloaded").is_transient());
        assert!(ClientError::Protocol("connection closed mid-request".into()).is_transient());
        // Deterministic failures must never be retried.
        assert!(!server("bad_request").is_transient());
        assert!(!server("corruption_detected").is_transient());
        assert!(!server("partial_result_unsupported").is_transient());
        assert!(!server("deadline_exceeded").is_transient());
        assert!(!ClientError::Protocol("response is not UTF-8".into()).is_transient());
    }

    #[test]
    fn jitter_stays_under_cap_and_varies() {
        let mut state = jitter_seed();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(next_jitter(&mut state) % 1000);
        }
        assert!(
            seen.len() > 10,
            "jitter should spread: {} values",
            seen.len()
        );
    }

    #[test]
    fn shard_conn_counts_dial_failures_without_sticking() {
        // Bind-then-drop to obtain a port that refuses connections.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let mut conn = ShardConn::new(&addr);
        assert!(!conn.is_connected());
        let err = conn.request("{\"op\":\"health\"}").unwrap_err();
        assert!(err.is_transient(), "dial failure must read as transient");
        assert_eq!(conn.conn_failures(), 1);
        // The failed dial leaves no socket behind; a second attempt
        // re-dials (and fails again) rather than erroring on state.
        assert!(!conn.is_connected());
        assert!(conn.request("{\"op\":\"health\"}").is_err());
        assert_eq!(conn.conn_failures(), 2);
    }

    #[test]
    fn shard_conn_redials_after_server_drops_connection() {
        use crate::proto::{read_frame, write_frame};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        // A server that answers exactly one request per connection,
        // then hangs up — every follow-up request needs a re-dial.
        let server = std::thread::spawn(move || {
            for _ in 0..2 {
                let (mut s, _) = listener.accept().unwrap();
                let _ = read_frame(&mut s).unwrap();
                write_frame(&mut s, b"{\"ok\":true,\"version\":4,\"op\":\"health\"}").unwrap();
                // Connection drops here.
            }
        });
        let mut conn = ShardConn::new(&addr);
        assert!(conn.request("{\"op\":\"health\"}").is_ok());
        assert!(conn.is_connected());
        // The server closed the socket after responding; the next
        // request hits the torn connection, drops it (counted), and a
        // retry re-dials the fresh accept.
        let r = conn.request_with_retry("{\"op\":\"health\"}", &RetryPolicy::default());
        assert!(r.is_ok(), "retry should re-dial: {:?}", r.err());
        assert_eq!(conn.conn_failures(), 1);
        server.join().unwrap();
    }

    #[test]
    fn query_encoding_matches_parser() {
        let q = encode_query(&[0.1, 2.0, -3.25]);
        let parsed = json::parse(&q).unwrap();
        let vals: Vec<f64> = parsed
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(vals, vec![0.1, 2.0, -3.25]);
    }
}
