//! A blocking protocol client.
//!
//! One [`Client`] wraps one TCP connection and issues framed requests
//! sequentially. It is intentionally simple — the unit of concurrency
//! is the connection, so a load generator opens many clients.

use std::fmt;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::json::{self, Json};
use crate::proto::{read_frame, write_frame};

/// What a request can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-exchange).
    Io(io::Error),
    /// The server's bytes were not a valid protocol response.
    Protocol(String),
    /// The server answered with a typed error frame.
    Server {
        /// The wire error code (e.g. `"overloaded"`).
        code: String,
        /// The human-readable message.
        message: String,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The wire code, when this is a typed server error.
    pub fn code(&self) -> Option<&str> {
        match self {
            ClientError::Server { code, .. } => Some(code),
            _ => None,
        }
    }
}

/// A blocking connection to a warptree server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Sets the per-response read timeout (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends `body` (a JSON request object) and returns the **raw**
    /// response text — error frames included. The bench harness and
    /// byte-equivalence tests want the exact bytes.
    pub fn request_raw(&mut self, body: &str) -> Result<String, ClientError> {
        write_frame(&mut self.stream, body.as_bytes())?;
        let payload = read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("connection closed mid-request".to_string()))?;
        String::from_utf8(payload)
            .map_err(|_| ClientError::Protocol("response is not UTF-8".to_string()))
    }

    /// Sends `body` and parses the response, converting error frames
    /// into [`ClientError::Server`].
    pub fn request(&mut self, body: &str) -> Result<Json, ClientError> {
        let text = self.request_raw(body)?;
        let v = json::parse(&text).map_err(ClientError::Protocol)?;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(v),
            Some(false) => {
                let err = v.get("error");
                let code = err
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("unknown")
                    .to_string();
                let message = err
                    .and_then(|e| e.get("message"))
                    .and_then(Json::as_str)
                    .unwrap_or("")
                    .to_string();
                Err(ClientError::Server { code, message })
            }
            None => Err(ClientError::Protocol("response missing \"ok\"".to_string())),
        }
    }

    /// ε-threshold search.
    pub fn search(
        &mut self,
        query: &[f64],
        epsilon: f64,
        window: Option<u32>,
    ) -> Result<Json, ClientError> {
        self.request(&search_request(query, epsilon, window))
    }

    /// k-NN search with default expansion parameters.
    pub fn knn(&mut self, query: &[f64], k: usize) -> Result<Json, ClientError> {
        self.request(&format!(
            "{{\"op\":\"knn\",\"query\":{},\"k\":{k}}}",
            encode_query(query)
        ))
    }

    /// Appends sequences to the served index as one new tail segment
    /// (protocol version 2). On `Ok` the new generation is already
    /// published — follow-up queries on any connection see the data.
    pub fn ingest(&mut self, sequences: &[Vec<f64>]) -> Result<Json, ClientError> {
        self.request(&ingest_request(sequences))
    }

    /// Liveness probe.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"health\"}")
    }

    /// Index metadata.
    pub fn info(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"info\"}")
    }

    /// Process metrics snapshot.
    pub fn stats(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"stats\"}")
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<Json, ClientError> {
        self.request("{\"op\":\"shutdown\"}")
    }
}

/// Renders a query as a JSON number array (shared by client and bench).
pub fn encode_query(query: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in query.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&warptree_obs::json::num(*v));
    }
    out.push(']');
    out
}

/// Builds a `search` request body.
pub fn search_request(query: &[f64], epsilon: f64, window: Option<u32>) -> String {
    match window {
        Some(w) => format!(
            "{{\"op\":\"search\",\"query\":{},\"epsilon\":{},\"window\":{w}}}",
            encode_query(query),
            warptree_obs::json::num(epsilon)
        ),
        None => format!(
            "{{\"op\":\"search\",\"query\":{},\"epsilon\":{}}}",
            encode_query(query),
            warptree_obs::json::num(epsilon)
        ),
    }
}

/// Builds an `ingest` request body (protocol version 2).
pub fn ingest_request(sequences: &[Vec<f64>]) -> String {
    let mut out = String::from("{\"op\":\"ingest\",\"version\":2,\"sequences\":[");
    for (i, seq) in sequences.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&encode_query(seq));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_bodies_are_valid_json() {
        let body = search_request(&[1.0, -2.5], 0.75, Some(3));
        let v = json::parse(&body).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("search"));
        assert_eq!(v.get("window").and_then(Json::as_u64), Some(3));
        let nowin = search_request(&[1.0], 0.5, None);
        assert!(json::parse(&nowin).unwrap().get("window").is_none());
    }

    #[test]
    fn ingest_body_round_trips_through_parse() {
        let body = ingest_request(&[vec![1.0, 2.5], vec![-3.0]]);
        let parsed = crate::proto::Request::parse(body.as_bytes(), false).unwrap();
        assert_eq!(
            parsed,
            crate::proto::Request::Ingest {
                sequences: vec![vec![1.0, 2.5], vec![-3.0]]
            }
        );
    }

    #[test]
    fn query_encoding_matches_parser() {
        let q = encode_query(&[0.1, 2.0, -3.25]);
        let parsed = json::parse(&q).unwrap();
        let vals: Vec<f64> = parsed
            .as_arr()
            .unwrap()
            .iter()
            .map(|x| x.as_f64().unwrap())
            .collect();
        assert_eq!(vals, vec![0.1, 2.0, -3.25]);
    }
}
