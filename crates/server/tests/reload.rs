//! Hot reload under live traffic: a new generation committed while
//! clients are querying is picked up by the watcher without a single
//! failed or torn response — every answer is byte-identical to the
//! ground truth of whichever generation it reports. A crashed commit
//! attempt (fault-injected mid-build) in between must leave the server
//! serving the old generation undisturbed.
//!
//! (The companion memory-safety property — the old snapshot is freed
//! once its last in-flight query drops it — is a unit test on
//! `SnapshotCell`, where a `Weak` probe can be planted.)

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use warptree_core::categorize::Alphabet;
use warptree_core::search::{QueryRequest, SearchParams};
use warptree_core::sequence::SequenceStore;
use warptree_disk::{
    build_dir_with, open_dir_snapshot_with, real_vfs, DirSnapshot, FaultMode, FaultVfs, TreeKind,
};
use warptree_server::client::search_request;
use warptree_server::{proto, Client, Json, Server, ServerConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-reload-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn store_v1() -> SequenceStore {
    let values: Vec<Vec<f64>> = (0..8usize)
        .map(|s| {
            (0..20)
                .map(|j| ((s * 5 + j * 3) % 17) as f64 * 0.5)
                .collect()
        })
        .collect();
    SequenceStore::from_values(values)
}

/// Same shape, shifted values, two extra sequences — gen 2 answers
/// genuinely differ from gen 1.
fn store_v2() -> SequenceStore {
    let values: Vec<Vec<f64>> = (0..10usize)
        .map(|s| {
            (0..20)
                .map(|j| ((s * 7 + j * 2) % 19) as f64 * 0.5)
                .collect()
        })
        .collect();
    SequenceStore::from_values(values)
}

fn commit(dir: &Path, store: &SequenceStore) {
    let alphabet = Alphabet::equal_length(store, 6).unwrap();
    build_dir_with(
        real_vfs(),
        store,
        &alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        dir,
    )
    .unwrap();
}

const QUERIES: [&[f64]; 3] = [
    &[2.5, 4.0, 5.5, 7.0],
    &[0.0, 1.5, 3.0],
    &[8.0, 1.0, 2.0, 3.5, 5.0],
];
const EPSILON: f64 = 1.0;

/// Ground-truth responses for every probe query against `snap`,
/// rendered with the server's own encoders.
fn expected_responses(snap: &DirSnapshot) -> Vec<String> {
    QUERIES
        .iter()
        .map(|q| {
            let params = SearchParams::with_epsilon(EPSILON);
            let (out, _) = snap
                .run_query(&QueryRequest::threshold_params(q, params))
                .unwrap();
            let answers = out.into_answer_set();
            proto::ok_response(
                "search",
                &format!(
                    "\"generation\":{},\"count\":{},\"matches\":{}",
                    snap.generation,
                    answers.len(),
                    proto::encode_matches(answers.matches())
                ),
            )
        })
        .collect()
}

#[test]
fn generation_commit_under_traffic_swaps_without_torn_responses() {
    let dir = tmpdir("midtraffic");
    commit(&dir, &store_v1());
    let expected_v1 =
        expected_responses(&open_dir_snapshot_with(real_vfs().as_ref(), &dir, 32, 256).unwrap());

    let config = ServerConfig {
        reload_interval: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let addr = handle.addr();

    // Continuous traffic: 4 connections cycling the probe queries,
    // recording (query index, raw response) pairs.
    let stop = Arc::new(AtomicBool::new(false));
    let seen: Arc<Mutex<Vec<(usize, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let traffic: Vec<_> = (0..4)
        .map(|t| {
            let stop = stop.clone();
            let seen = seen.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut i = t; // desynchronize the threads
                while !stop.load(Ordering::Relaxed) {
                    let qi = i % QUERIES.len();
                    let body = search_request(QUERIES[qi], EPSILON, None);
                    let resp = client.request_raw(&body).unwrap();
                    seen.lock().unwrap().push((qi, resp));
                    i += 1;
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(150));

    // A writer crashes mid-commit: the build dies partway through its
    // I/O (fault-injected process death), leaving staged litter but no
    // manifest update. The server must not notice.
    let crashed = build_dir_with(
        FaultVfs::new(12, FaultMode::Crash),
        &store_v2(),
        &Alphabet::equal_length(&store_v2(), 6).unwrap(),
        TreeKind::Full,
        1,
        1,
        None,
        &dir,
    );
    assert!(crashed.is_err(), "fault at op 12 should fail the build");
    std::thread::sleep(Duration::from_millis(150));

    // The real commit succeeds; capture gen-2 ground truth.
    commit(&dir, &store_v2());
    let expected_v2 =
        expected_responses(&open_dir_snapshot_with(real_vfs().as_ref(), &dir, 32, 256).unwrap());

    // Wait (via the protocol, like a real operator) for the watcher to
    // swap generations.
    let mut probe = Client::connect(addr).unwrap();
    let swapped_by = Instant::now() + Duration::from_secs(5);
    loop {
        let gen = probe
            .health()
            .unwrap()
            .get("generation")
            .and_then(Json::as_u64)
            .unwrap();
        if gen == 2 {
            break;
        }
        assert!(Instant::now() < swapped_by, "reload never happened");
        std::thread::sleep(Duration::from_millis(25));
    }
    std::thread::sleep(Duration::from_millis(150)); // post-swap traffic

    stop.store(true, Ordering::Relaxed);
    for t in traffic {
        t.join().unwrap();
    }

    // Every response is byte-identical to one generation's ground
    // truth — no mixed-generation ("torn") answers, no errors.
    let seen = seen.lock().unwrap();
    assert!(seen.len() > 50, "too little traffic: {}", seen.len());
    let (mut v1_hits, mut v2_hits) = (0usize, 0usize);
    for (qi, resp) in seen.iter() {
        if resp == &expected_v1[*qi] {
            v1_hits += 1;
        } else if resp == &expected_v2[*qi] {
            v2_hits += 1;
        } else {
            panic!(
                "torn response for query {qi}:\n  got      {resp}\n  gen1 want {}\n  gen2 want {}",
                expected_v1[*qi], expected_v2[*qi]
            );
        }
    }
    assert!(v1_hits > 0, "no traffic observed generation 1");
    assert!(v2_hits > 0, "no traffic observed generation 2");

    // The watcher's accounting: at least one reload, no reload errors
    // blamed on the crashed (never-committed) attempt, gauge at gen 2.
    let snap = handle.registry().snapshot();
    assert!(snap.counters.get("server.reloads").copied() >= Some(1));
    assert_eq!(snap.counters.get("server.reload_errors"), None);
    assert_eq!(snap.gauges.get("server.generation"), Some(&2.0));

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
