//! End-to-end tests of the per-query tracing layer over the wire:
//! client-requested span trees (protocol v4), the queue/service
//! timing split, the slow-query ring, and the Prometheus metrics
//! exposition (framed op and plain-HTTP endpoint).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};

use warptree_core::categorize::Alphabet;
use warptree_core::sequence::SequenceStore;
use warptree_disk::{build_dir_with, real_vfs, TreeKind};
use warptree_server::client::{encode_query, ingest_request};
use warptree_server::json::{self, Json};
use warptree_server::{Client, Server, ServerConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-trace-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn build_index(dir: &Path) -> SequenceStore {
    let mut values = Vec::new();
    for s in 0..8u32 {
        let len = 14 + (s as usize * 5) % 12;
        let seq: Vec<f64> = (0..len)
            .map(|j| ((s as usize * 7 + j * 3) % 19) as f64 * 0.5)
            .collect();
        values.push(seq);
    }
    let store = SequenceStore::from_values(values);
    let alphabet = Alphabet::equal_length(&store, 5).unwrap();
    build_dir_with(
        real_vfs(),
        &store,
        &alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        dir,
    )
    .unwrap();
    store
}

fn search_body_v(query: &[f64], epsilon: f64, version: u32, trace: &str) -> String {
    format!(
        "{{\"op\":\"search\",\"version\":{version},\"query\":{},\"epsilon\":{epsilon}{trace}}}",
        encode_query(query)
    )
}

fn span_names(trace: &Json) -> Vec<String> {
    trace
        .get("spans")
        .and_then(|s| s.as_arr())
        .unwrap()
        .iter()
        .map(|s| s.get("name").and_then(|n| n.as_str()).unwrap().to_string())
        .collect()
}

/// The tentpole acceptance path: a v4 client asks for a trace and gets
/// the whole funnel back — per-segment filter fan-out, postprocess,
/// pager I/O attribution, the server service span — while the result
/// bytes stay identical to the untraced (and v3) response.
#[test]
fn traced_search_returns_funnel_span_tree_with_identical_results() {
    let dir = tmpdir("funnel");
    let store = build_index(&dir);
    let query: Vec<f64> = store.iter().next().unwrap().1.values()[2..8].to_vec();

    let config = ServerConfig {
        trace_sample: 0, // only client-requested traces
        slow_ms: 0,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // Ingest a tail segment so the filter fans out over base + segment
    // and the trace can attribute work per segment.
    let seg: Vec<Vec<f64>> = vec![store.iter().nth(1).unwrap().1.values().to_vec()];
    let resp = client.request(&ingest_request(&seg)).unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));

    let v3 = client
        .request_raw(&search_body_v(&query, 1.5, 3, ""))
        .unwrap();
    let v4_plain = client
        .request_raw(&search_body_v(&query, 1.5, 4, ""))
        .unwrap();
    let v4_traced = client
        .request_raw(&search_body_v(
            &query,
            1.5,
            4,
            ",\"trace\":true,\"trace_id\":\"e2e-1\"",
        ))
        .unwrap();

    // v3 responses are byte-identical to the pre-tracing protocol: no
    // timings, no trace.
    assert!(!v3.contains("\"timings\""), "{v3}");
    assert!(!v3.contains("\"trace\""), "{v3}");
    // v4 gets the timing split on every ok response; the trace only on
    // request. The result prefix (generation/count/matches) is shared
    // by all three, byte for byte.
    let prefix = v3.strip_suffix('}').unwrap();
    assert!(v4_plain.starts_with(prefix), "{v4_plain}");
    assert!(
        v4_plain.contains("\"timings\":{\"queue_ns\":"),
        "{v4_plain}"
    );
    assert!(!v4_plain.contains("\"trace\""), "{v4_plain}");
    assert!(v4_traced.starts_with(prefix), "{v4_traced}");

    let parsed = json::parse(&v4_traced).unwrap();
    let timings = parsed.get("timings").unwrap();
    assert!(timings.get("queue_ns").and_then(|v| v.as_u64()).is_some());
    assert!(timings.get("service_ns").and_then(|v| v.as_u64()).is_some());
    let trace = parsed
        .get("trace")
        .expect("traced response carries a trace");
    assert_eq!(
        trace.get("trace_id").and_then(|v| v.as_str()),
        Some("e2e-1")
    );
    let names = span_names(trace);
    for want in [
        "server.service",
        "filter",
        "filter.segment",
        "postprocess",
        "pager.io",
    ] {
        assert!(
            names.iter().any(|n| n == want),
            "span {want:?} missing from {names:?}"
        );
    }
    // The segment fan-out is attributed: base tree + one ingested
    // segment → two filter.segment spans.
    assert_eq!(names.iter().filter(|n| *n == "filter.segment").count(), 2);

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Sampling traces 1-in-N requests without the client asking, and the
/// completed traces land in the slow-query ring behind `{"op":"slowlog"}`.
#[test]
fn sampled_traces_land_in_the_slowlog_ring() {
    let dir = tmpdir("slowlog");
    let store = build_index(&dir);
    let query: Vec<f64> = store.iter().next().unwrap().1.values()[0..5].to_vec();

    let config = ServerConfig {
        trace_sample: 1, // trace every request
        slow_ms: 0,      // threshold capture off: entries come from sampling alone
        slowlog_capacity: 8,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    for _ in 0..3 {
        let resp = client
            .request_raw(&search_body_v(&query, 1.0, 4, ""))
            .unwrap();
        assert!(resp.contains("\"ok\":true"), "{resp}");
        // Sampler-only traces stay server-side: the response is not
        // burdened with a trace the client never asked for.
        assert!(!resp.contains("\"trace\""), "{resp}");
    }

    let resp = client.request(r#"{"op":"slowlog","version":4}"#).unwrap();
    assert_eq!(resp.get("ok").and_then(|v| v.as_bool()), Some(true));
    let entries = resp.get("entries").and_then(|e| e.as_arr()).unwrap();
    assert!(
        entries.len() >= 3,
        "expected >=3 entries, got {}",
        entries.len()
    );
    let newest = &entries[0];
    assert_eq!(newest.get("op").and_then(|v| v.as_str()), Some("search"));
    assert!(newest.get("dur_ns").and_then(|v| v.as_u64()).is_some());
    assert!(newest.get("queue_ns").and_then(|v| v.as_u64()).is_some());
    assert!(newest.get("unix_ms").and_then(|v| v.as_u64()).unwrap() > 0);
    let trace = newest.get("trace").expect("sampled entry keeps its trace");
    assert!(span_names(trace).iter().any(|n| n == "filter"));

    // The ring size satellite: stats exposes server.slowlog_entries.
    let stats = client.stats().unwrap();
    let gauge = stats
        .get("metrics")
        .and_then(|m| m.get("gauges"))
        .and_then(|g| g.get("server.slowlog_entries"))
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(gauge >= 3.0, "gauge {gauge}");

    // v3 clients cannot reach the v4 ops.
    let resp = client
        .request_raw(r#"{"op":"slowlog","version":3}"#)
        .unwrap();
    assert!(resp.contains("\"code\":\"unsupported_version\""), "{resp}");

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The metrics exposition satellite: the same Prometheus text is
/// served over the framed `{"op":"metrics"}` op and the plain-HTTP
/// `GET /metrics` endpoint, with `# TYPE` lines and no duplicates.
#[test]
fn metrics_exposition_over_frame_and_http() {
    let dir = tmpdir("expo");
    let store = build_index(&dir);
    let query: Vec<f64> = store.iter().next().unwrap().1.values()[0..5].to_vec();

    let config = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let resp = client
        .request_raw(&search_body_v(&query, 1.0, 4, ""))
        .unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");

    let framed = client.request(r#"{"op":"metrics","version":4}"#).unwrap();
    assert_eq!(framed.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        framed.get("format").and_then(|v| v.as_str()),
        Some("prometheus-0.0.4")
    );
    let exposition = framed
        .get("exposition")
        .and_then(|v| v.as_str())
        .unwrap()
        .to_string();
    assert!(
        exposition.contains("# TYPE server_requests_ok counter"),
        "{exposition}"
    );
    assert!(
        exposition.contains("server_request_ns_count"),
        "{exposition}"
    );

    // No duplicate metric names in the exposition (Prometheus rejects
    // a scrape with repeated TYPE/name groups).
    let mut names: Vec<&str> = exposition
        .lines()
        .filter(|l| l.starts_with("# TYPE "))
        .map(|l| l.split_whitespace().nth(2).unwrap())
        .collect();
    let total = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(total, names.len(), "duplicate # TYPE lines");

    // The HTTP endpoint serves the same registry.
    let addr = handle.metrics_addr().expect("metrics_addr configured");
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
        .unwrap();
    let mut http = String::new();
    s.read_to_string(&mut http).unwrap();
    assert!(http.starts_with("HTTP/1.1 200 OK"), "{http}");
    assert!(http.contains("text/plain; version=0.0.4"), "{http}");
    assert!(http.contains("# TYPE server_requests_ok counter"), "{http}");

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
