//! End-to-end tests of the TCP server against a real index directory:
//! concurrent byte-identical equivalence with the in-process search,
//! admission control (bounded queue, typed `overloaded`), deadlines,
//! bad-request robustness, control-op schemas, and graceful drain.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use warptree_core::categorize::Alphabet;
use warptree_core::search::{KnnParams, QueryRequest, SearchParams};
use warptree_core::sequence::SequenceStore;
use warptree_disk::{build_dir_with, open_dir_snapshot_with, real_vfs, DirSnapshot, TreeKind};
use warptree_server::client::search_request;
use warptree_server::{proto, Client, ClientError, Server, ServerConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-server-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A deterministic corpus with enough structure for non-trivial answer
/// sets: interleaved ramps and plateaus, all values on a small grid so
/// ε-balls overlap several occurrences.
fn corpus() -> SequenceStore {
    let mut values = Vec::new();
    for s in 0..10u32 {
        let len = 15 + (s as usize * 3) % 16;
        let mut seq = Vec::with_capacity(len);
        for j in 0..len {
            let v = ((s as usize * 7 + j * 3) % 23) as f64 * 0.5;
            seq.push(v);
        }
        values.push(seq);
    }
    SequenceStore::from_values(values)
}

/// Builds generation 1 of `dir` from [`corpus`], returning the store.
fn build_index(dir: &Path) -> SequenceStore {
    let store = corpus();
    let alphabet = Alphabet::equal_length(&store, 6).unwrap();
    build_dir_with(
        real_vfs(),
        &store,
        &alphabet,
        TreeKind::Full,
        1,
        1,
        None,
        dir,
    )
    .unwrap();
    store
}

/// Queries drawn from the corpus (exact subsequences → guaranteed
/// zero-distance hits) plus one off-grid probe.
fn queries(store: &SequenceStore) -> Vec<Vec<f64>> {
    let seq = |i: usize| store.iter().nth(i).unwrap().1.values().to_vec();
    vec![
        seq(0)[2..8].to_vec(),
        seq(3)[0..5].to_vec(),
        seq(5)[4..10].to_vec(),
        vec![3.25, 4.75, 6.0, 2.5],
    ]
}

/// Renders the exact response the server must emit for a `search`
/// request — same encoder ([`proto::encode_matches`]), same framing
/// ([`proto::ok_response`]), computed against a locally opened
/// snapshot of the same generation.
fn expected_search_response(snap: &DirSnapshot, query: &[f64], epsilon: f64) -> String {
    let params = SearchParams::with_epsilon(epsilon);
    let (out, _) = snap
        .run_query(&QueryRequest::threshold_params(query, params))
        .unwrap();
    let answers = out.into_answer_set();
    proto::ok_response(
        "search",
        &format!(
            "\"generation\":{},\"count\":{},\"matches\":{}",
            snap.generation,
            answers.len(),
            proto::encode_matches(answers.matches())
        ),
    )
}

#[test]
fn concurrent_connections_match_local_search_byte_for_byte() {
    let dir = tmpdir("equivalence");
    let store = build_index(&dir);
    let snap = open_dir_snapshot_with(real_vfs().as_ref(), &dir, 64, 512).unwrap();
    let qs = queries(&store);
    let epsilons = [0.5, 1.0, 2.5];

    // The single-threaded ground truth, rendered once up front.
    let mut expected = Vec::new();
    let mut bodies = Vec::new();
    let mut any_hits = 0usize;
    for q in &qs {
        for &eps in &epsilons {
            expected.push(expected_search_response(&snap, q, eps));
            bodies.push(search_request(q, eps, None));
            if expected.last().unwrap().contains("\"count\":0") {
                continue;
            }
            any_hits += 1;
        }
    }
    assert!(any_hits > 0, "fixture produced only empty answer sets");

    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let expected = Arc::new(expected);
    let bodies = Arc::new(bodies);
    let threads: Vec<_> = (0..8)
        .map(|_| {
            let expected = expected.clone();
            let bodies = bodies.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for (body, want) in bodies.iter().zip(expected.iter()) {
                    let got = client.request_raw(body).unwrap();
                    assert_eq!(&got, want, "response differs for request {body}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn knn_over_the_wire_matches_local_knn() {
    let dir = tmpdir("knn");
    let store = build_index(&dir);
    let snap = open_dir_snapshot_with(real_vfs().as_ref(), &dir, 64, 512).unwrap();
    let query = queries(&store)[0].clone();

    let (out, _) = snap
        .run_query(&QueryRequest::knn_params(&query, KnnParams::new(3)))
        .unwrap();
    let matches = out.into_ranked();
    let want = proto::ok_response(
        "knn",
        &format!(
            "\"generation\":{},\"count\":{},\"matches\":{}",
            snap.generation,
            matches.len(),
            proto::encode_matches_ranked(&matches)
        ),
    );

    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let body = format!(
        "{{\"op\":\"knn\",\"query\":{},\"k\":3}}",
        warptree_server::client::encode_query(&query)
    );
    assert_eq!(client.request_raw(&body).unwrap(), want);

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn batch_composes_individual_search_bodies() {
    let dir = tmpdir("batch");
    let store = build_index(&dir);
    let snap = open_dir_snapshot_with(real_vfs().as_ref(), &dir, 64, 512).unwrap();
    let qs = queries(&store);
    let eps = 1.0;

    let mut parts = Vec::new();
    for q in &qs[..2] {
        let params = SearchParams::with_epsilon(eps);
        let (out, _) = snap
            .run_query(&QueryRequest::threshold_params(q, params))
            .unwrap();
        let answers = out.into_answer_set();
        parts.push(format!(
            "{{\"generation\":{},\"count\":{},\"matches\":{}}}",
            snap.generation,
            answers.len(),
            proto::encode_matches(answers.matches())
        ));
    }
    let want = proto::ok_response(
        "batch",
        &format!(
            "\"generation\":{},\"results\":[{}]",
            snap.generation,
            parts.join(",")
        ),
    );

    let body = format!(
        "{{\"op\":\"batch\",\"queries\":[{},{}],\"epsilon\":1.0}}",
        warptree_server::client::encode_query(&qs[0]),
        warptree_server::client::encode_query(&qs[1]),
    );

    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    assert_eq!(client.request_raw(&body).unwrap(), want);

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn full_queue_rejects_with_typed_overloaded_error() {
    let dir = tmpdir("overload");
    build_index(&dir);
    let config = ServerConfig {
        workers: 1,
        queue_depth: 1,
        enable_debug_ops: true,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let addr = handle.addr();

    // Occupy the single worker, then the single queue slot.
    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request("{\"op\":\"debug_sleep\",\"ms\":900}").unwrap();
    });
    std::thread::sleep(Duration::from_millis(250));
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.request("{\"op\":\"debug_sleep\",\"ms\":200}").unwrap();
    });
    std::thread::sleep(Duration::from_millis(250));

    // Worker busy + queue full → admission control rejects *now*.
    let mut rejected = Client::connect(addr).unwrap();
    let err = rejected.search(&[1.0, 2.0], 1.0, None).unwrap_err();
    assert_eq!(err.code(), Some("overloaded"), "got: {err}");

    // Control ops bypass the pool: health answers while saturated.
    let health = rejected.health().unwrap();
    assert_eq!(
        health.get("status").and_then(warptree_server::Json::as_str),
        Some("serving")
    );

    busy.join().unwrap();
    queued.join().unwrap();

    // Once the pool drains, the same connection is served normally.
    let ok = rejected.search(&[1.0, 2.0], 1.0, None).unwrap();
    assert_eq!(
        ok.get("op").and_then(warptree_server::Json::as_str),
        Some("search")
    );

    let snap = handle.registry().snapshot();
    assert!(
        snap.counters.get("server.rejected_overload").copied() >= Some(1),
        "overload rejection not counted: {:?}",
        snap.counters
    );

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn queued_request_past_its_deadline_is_dropped_unstarted() {
    let dir = tmpdir("deadline");
    build_index(&dir);
    let config = ServerConfig {
        workers: 1,
        queue_depth: 4,
        deadline: Duration::from_millis(300),
        enable_debug_ops: true,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let addr = handle.addr();

    let busy = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        // Longer than the deadline: anything queued behind it expires.
        c.request("{\"op\":\"debug_sleep\",\"ms\":800}").unwrap();
    });
    std::thread::sleep(Duration::from_millis(150));

    let mut client = Client::connect(addr).unwrap();
    let err = client.search(&[1.0, 2.0], 1.0, None).unwrap_err();
    assert_eq!(err.code(), Some("deadline_exceeded"), "got: {err}");

    busy.join().unwrap();
    let snap = handle.registry().snapshot();
    assert!(
        snap.counters.get("server.deadline_exceeded").copied() >= Some(1),
        "expiry not counted: {:?}",
        snap.counters
    );

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn bad_requests_get_typed_errors_and_never_kill_the_connection() {
    let dir = tmpdir("badreq");
    let store = build_index(&dir);
    let config = ServerConfig {
        max_query_len: 8,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    let bad = [
        "this is not json",
        "{\"op\":\"teapot\"}",
        "{\"op\":\"search\",\"epsilon\":1.0}",
        "{\"op\":\"search\",\"query\":[],\"epsilon\":1.0}",
        "{\"op\":\"search\",\"query\":[1.0,\"x\"],\"epsilon\":1.0}",
        "{\"op\":\"search\",\"query\":[1.0],\"epsilon\":-2.0}",
        // Over max_query_len=8.
        "{\"op\":\"search\",\"query\":[1,2,3,4,5,6,7,8,9,10],\"epsilon\":1.0}",
        // Debug ops are off by default: unknown op.
        "{\"op\":\"debug_sleep\",\"ms\":1}",
    ];
    for body in bad {
        let err = client.request(body).unwrap_err();
        match err {
            ClientError::Server { ref code, .. } => {
                assert_eq!(code, "bad_request", "body {body}: {err}")
            }
            other => panic!("body {body}: wanted a typed server error, got {other}"),
        }
    }

    // The same connection still serves valid work afterwards.
    let q = queries(&store)[0].clone();
    let ok = client.search(&q, 1.0, None).unwrap();
    assert_eq!(
        ok.get("ok").and_then(warptree_server::Json::as_bool),
        Some(true)
    );

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn control_ops_report_index_and_process_state() {
    let dir = tmpdir("control");
    let store = build_index(&dir);
    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    use warptree_server::Json;

    let health = client.health().unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("serving"));
    assert_eq!(health.get("generation").and_then(Json::as_u64), Some(1));

    let info = client.info().unwrap();
    assert_eq!(
        info.get("sequences").and_then(Json::as_u64),
        Some(store.len() as u64)
    );
    assert_eq!(
        info.get("values").and_then(Json::as_u64),
        Some(store.total_len())
    );
    assert_eq!(info.get("categories").and_then(Json::as_u64), Some(6));
    assert_eq!(info.get("workers").and_then(Json::as_u64), Some(4));

    // Run one search so the search metrics have something to show.
    let q = queries(&store)[0].clone();
    client.search(&q, 1.0, None).unwrap();

    let stats = client.stats().unwrap();
    let metrics = stats.get("metrics").expect("stats carries metrics");
    for section in ["counters", "gauges", "histograms"] {
        assert!(metrics.get(section).is_some(), "missing {section}");
    }
    let counters = metrics.get("counters").unwrap();
    assert_eq!(
        counters.get("server.requests_ok").and_then(Json::as_u64),
        Some(1)
    );
    assert!(
        counters
            .get("search.filter_cells")
            .and_then(Json::as_u64)
            .unwrap_or(0)
            > 0,
        "shared search metrics not wired into the server"
    );
    assert!(
        metrics
            .get("histograms")
            .and_then(|h| h.get("server.request_ns"))
            .is_some(),
        "request latency histogram missing"
    );

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn slow_client_mid_frame_pauses_do_not_desync_the_stream() {
    let dir = tmpdir("slowclient");
    build_index(&dir);
    let handle = Server::start(&dir, ServerConfig::default()).unwrap();

    let mut stream = std::net::TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // Dribble one frame 2 bytes at a time with pauses longer than the
    // server's 100 ms read timeout: every chunk boundary forces a
    // mid-frame timeout server-side. A read path that treats those as
    // "idle" after consuming bytes would desync and answer garbage.
    let body = br#"{"op":"health"}"#;
    let mut frame = Vec::new();
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(body);
    use std::io::Write as _;
    for chunk in frame.chunks(2) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(150));
    }
    let resp = proto::read_frame(&mut stream).unwrap().unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert!(text.contains("\"ok\":true"), "desynced response: {text}");

    // The same connection then serves a normally-written frame: the
    // stream is still at a frame boundary.
    stream.write_all(&frame).unwrap();
    let resp = proto::read_frame(&mut stream).unwrap().unwrap();
    let text = String::from_utf8(resp).unwrap();
    assert!(text.contains("\"status\":\"serving\""), "got: {text}");

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn connection_cap_rejects_with_typed_overloaded_frame() {
    let dir = tmpdir("connlimit");
    build_index(&dir);
    let config = ServerConfig {
        max_conns: 2,
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let addr = handle.addr();

    // Fill both slots; a health round-trip proves each connection
    // thread is live (so the accept loop has counted them).
    let mut c1 = Client::connect(addr).unwrap();
    let mut c2 = Client::connect(addr).unwrap();
    c1.health().unwrap();
    c2.health().unwrap();

    // The third connection is refused at accept with a typed error
    // frame — read it without writing anything so the frame can't be
    // lost to a reset.
    let mut s3 = std::net::TcpStream::connect(addr).unwrap();
    s3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let payload = proto::read_frame(&mut s3).unwrap().unwrap();
    let text = String::from_utf8(payload).unwrap();
    assert!(text.contains("\"code\":\"overloaded\""), "got: {text}");

    let snap = handle.registry().snapshot();
    assert!(
        snap.counters.get("server.rejected_conn_limit").copied() >= Some(1),
        "connection-limit rejection not counted: {:?}",
        snap.counters
    );

    // Closing a connection frees its slot (after the conn thread
    // notices the close and the accept loop reaps it).
    drop(c1);
    let mut served = false;
    for _ in 0..100 {
        let mut c = Client::connect(addr).unwrap();
        if c.health().is_ok() {
            served = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(served, "slot never freed after a client disconnected");

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn protocol_shutdown_drains_and_closes_the_listener() {
    let dir = tmpdir("shutdown");
    build_index(&dir);
    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let addr = handle.addr();

    let mut client = Client::connect(addr).unwrap();
    let resp = client.shutdown().unwrap();
    assert_eq!(
        resp.get("draining")
            .and_then(warptree_server::Json::as_bool),
        Some(true)
    );
    assert!(handle.is_shutting_down());

    // Query work is refused during the drain. Depending on timing the
    // refusal is a typed `shutting_down` error or an already-closed
    // connection — never a successful search.
    match client.search(&[1.0], 1.0, None) {
        Err(ClientError::Server { ref code, .. }) => assert_eq!(code, "shutting_down"),
        Err(_) => {} // connection torn down by the drain
        Ok(_) => panic!("drain accepted query work"),
    }

    handle.join();

    // The listener is gone: new connections are refused (or reset).
    assert!(
        Client::connect(addr).is_err(),
        "listener still accepting after drain"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn ingest_over_the_wire_is_immediately_searchable() {
    let dir = tmpdir("ingest");
    let store = build_index(&dir);
    let handle = Server::start(&dir, ServerConfig::default()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    use warptree_server::Json;

    // A fresh pattern, far off the existing value grid.
    let novel = vec![vec![40.0, 41.0, 42.0, 43.0, 42.0, 41.0], vec![44.0, 44.0]];
    let resp = client.ingest(&novel).unwrap();
    assert_eq!(resp.get("op").and_then(Json::as_str), Some("ingest"));
    assert_eq!(resp.get("generation").and_then(Json::as_u64), Some(2));
    // "sequences" acks the count ingested by *this* request.
    assert_eq!(resp.get("sequences").and_then(Json::as_u64), Some(2));
    assert_eq!(resp.get("segments").and_then(Json::as_u64), Some(2));

    // Read-your-writes: the very next search sees the appended data,
    // in the new sequence's tail segment, under its global SeqId.
    let q = vec![41.0, 42.0, 43.0];
    let found = client.search(&q, 0.5, None).unwrap();
    let matches = found
        .get("matches")
        .and_then(Json::as_arr)
        .expect("matches array");
    let hit = matches.first().expect("ingested pattern not found");
    assert_eq!(
        hit.get("seq").and_then(Json::as_u64),
        Some(store.len() as u64)
    );
    assert_eq!(hit.get("start").and_then(Json::as_u64), Some(1));

    // Byte-identical contract holds across segments: the wire response
    // matches a locally computed fan-out over the same generation.
    let snap = open_dir_snapshot_with(real_vfs().as_ref(), &dir, 64, 512).unwrap();
    assert_eq!(snap.generation, 2);
    let raw = client.request_raw(&search_request(&q, 0.5, None)).unwrap();
    assert_eq!(raw, expected_search_response(&snap, &q, 0.5));

    // `info` reports the segment layout and the grown corpus.
    let info = client.info().unwrap();
    assert_eq!(info.get("segments").and_then(Json::as_u64), Some(2));
    assert_eq!(
        info.get("sequences").and_then(Json::as_u64),
        Some(store.len() as u64 + 2)
    );

    // Version negotiation: ingest predates nothing — it *requires*
    // protocol version 2; a v1 frame gets the typed error.
    let err = client
        .request("{\"op\":\"ingest\",\"sequences\":[[1.0,2.0]]}")
        .unwrap_err();
    match err {
        ClientError::Server { ref code, .. } => assert_eq!(code, "unsupported_version"),
        other => panic!("expected typed error, got {other:?}"),
    }

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_compactor_folds_tail_segments() {
    let dir = tmpdir("compactor");
    build_index(&dir);
    let config = ServerConfig {
        compact_threshold: 1,
        compact_interval: Duration::from_millis(20),
        ..ServerConfig::default()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    use warptree_server::Json;

    client.ingest(&[vec![50.0, 51.0, 52.0, 53.0]]).unwrap();
    client.ingest(&[vec![60.0, 61.0, 62.0]]).unwrap();

    // The worker folds until one segment remains; each fold commits a
    // new generation the reload path publishes. Bounded poll.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let segments = loop {
        let info = client.info().unwrap();
        let segments = info.get("segments").and_then(Json::as_u64).unwrap();
        if segments == 1 || std::time::Instant::now() > deadline {
            break segments;
        }
        std::thread::sleep(Duration::from_millis(25));
    };
    assert_eq!(segments, 1, "compactor never folded the tail segments");

    // The folded index still serves the ingested data.
    let found = client.search(&[60.0, 61.0, 62.0], 0.5, None).unwrap();
    assert_eq!(found.get("count").and_then(Json::as_u64), Some(1));

    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}
