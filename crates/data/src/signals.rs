//! Signal-shaped generators: synthetic ECG traces and planted-motif
//! corpora with ground truth.
//!
//! [`ecg_corpus`] reproduces the paper's medical motivation (heartbeats
//! whose duration varies with heart rate); [`planted_corpus`] embeds a
//! known pattern — time-stretched and noised — into background noise and
//! returns the exact plant locations, enabling recall measurements for
//! examples and tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warptree_core::sequence::{Occurrence, SeqId, Sequence, SequenceStore};

fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn gauss(t: f64, mu: f64, sigma: f64) -> f64 {
    (-(t - mu) * (t - mu) / (2.0 * sigma * sigma)).exp()
}

/// One synthetic heartbeat sampled with `width` points (P wave, QRS
/// complex, T wave).
pub fn heartbeat(width: usize, amplitude: f64) -> Vec<f64> {
    (0..width)
        .map(|i| {
            let t = i as f64 / width as f64;
            let p = 0.15 * gauss(t, 0.18, 0.035);
            let q = -0.2 * gauss(t, 0.40, 0.018);
            let r = 1.0 * gauss(t, 0.46, 0.016);
            let s = -0.25 * gauss(t, 0.52, 0.018);
            let tw = 0.35 * gauss(t, 0.75, 0.06);
            amplitude * (p + q + r + s + tw)
        })
        .collect()
}

/// Configuration of the ECG generator.
#[derive(Debug, Clone)]
pub struct EcgConfig {
    /// Number of traces.
    pub traces: usize,
    /// Beats per trace.
    pub beats_per_trace: usize,
    /// Minimum and maximum beat width in samples (heart-rate range).
    pub beat_width: (usize, usize),
    /// Additive noise standard deviation.
    pub noise_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EcgConfig {
    fn default() -> Self {
        Self {
            traces: 8,
            beats_per_trace: 16,
            beat_width: (18, 34),
            noise_std: 0.03,
            seed: 0xEC6_0001,
        }
    }
}

/// Generates ECG-like traces; returns the store and the ground-truth
/// beat locations.
pub fn ecg_corpus(cfg: &EcgConfig) -> (SequenceStore, Vec<Occurrence>) {
    assert!(cfg.beat_width.0 >= 2 && cfg.beat_width.0 <= cfg.beat_width.1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = SequenceStore::new();
    let mut truth = Vec::new();
    for t in 0..cfg.traces {
        let mut values = Vec::new();
        for _ in 0..cfg.beats_per_trace {
            let width = rng.gen_range(cfg.beat_width.0..=cfg.beat_width.1);
            let start = values.len() as u32;
            let mut beat = heartbeat(width, 1.0);
            for v in &mut beat {
                *v += normal(&mut rng) * cfg.noise_std;
            }
            values.extend(beat);
            truth.push(Occurrence::new(SeqId(t as u32), start, width as u32));
        }
        store.push(Sequence::new(values));
    }
    (store, truth)
}

/// Configuration of the planted-motif generator.
#[derive(Debug, Clone)]
pub struct PlantConfig {
    /// Number of background sequences.
    pub sequences: usize,
    /// Length of each sequence.
    pub len: usize,
    /// The pattern to plant (its canonical form).
    pub pattern: Vec<f64>,
    /// How many plants to embed (spread round-robin over sequences).
    pub plants: usize,
    /// Time-stretch range: each plant is resampled to
    /// `pattern.len() × factor` with `factor ∈ [lo, hi]`.
    pub stretch: (f64, f64),
    /// Additive noise on planted values.
    pub noise_std: f64,
    /// Background random-walk step standard deviation.
    pub background_std: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for PlantConfig {
    fn default() -> Self {
        Self {
            sequences: 10,
            len: 300,
            pattern: heartbeat(20, 10.0),
            plants: 12,
            stretch: (0.7, 1.5),
            noise_std: 0.05,
            background_std: 2.0,
            seed: 0x91A_0001,
        }
    }
}

/// Linearly resamples `pattern` to `n` points.
pub fn resample(pattern: &[f64], n: usize) -> Vec<f64> {
    assert!(!pattern.is_empty() && n >= 1);
    if pattern.len() == 1 {
        return vec![pattern[0]; n];
    }
    (0..n)
        .map(|i| {
            let t = if n == 1 {
                0.0
            } else {
                i as f64 * (pattern.len() - 1) as f64 / (n - 1) as f64
            };
            let j = (t.floor() as usize).min(pattern.len() - 2);
            let frac = t - j as f64;
            pattern[j] * (1.0 - frac) + pattern[j + 1] * frac
        })
        .collect()
}

/// Generates background random walks with time-stretched, noised copies
/// of the pattern planted at known locations. Returns the store and the
/// plant occurrences.
pub fn planted_corpus(cfg: &PlantConfig) -> (SequenceStore, Vec<Occurrence>) {
    assert!(!cfg.pattern.is_empty());
    assert!(cfg.stretch.0 > 0.0 && cfg.stretch.0 <= cfg.stretch.1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Background walks.
    let mut seqs: Vec<Vec<f64>> = (0..cfg.sequences)
        .map(|_| {
            let mut v = rng.gen_range(0.0..50.0);
            (0..cfg.len)
                .map(|_| {
                    let out = v;
                    v += normal(&mut rng) * cfg.background_std;
                    out
                })
                .collect()
        })
        .collect();
    // Plants, round-robin, at non-overlapping slots.
    let mut truth = Vec::new();
    for p in 0..cfg.plants {
        let t = p % cfg.sequences;
        let factor = rng.gen_range(cfg.stretch.0..=cfg.stretch.1);
        let plen = ((cfg.pattern.len() as f64 * factor).round() as usize).clamp(2, cfg.len / 2);
        let slot = cfg.len / (cfg.plants / cfg.sequences + 1).max(1);
        let base = (p / cfg.sequences) * slot.max(plen + 1);
        if base + plen > cfg.len {
            continue; // does not fit; skip rather than overlap
        }
        let mut plant = resample(&cfg.pattern, plen);
        for v in &mut plant {
            *v += normal(&mut rng) * cfg.noise_std;
        }
        seqs[t][base..base + plen].copy_from_slice(&plant);
        truth.push(Occurrence::new(SeqId(t as u32), base as u32, plen as u32));
    }
    (SequenceStore::from_values(seqs), truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_has_r_peak() {
        let b = heartbeat(30, 1.0);
        let (imax, max) =
            b.iter().enumerate().fold(
                (0, f64::MIN),
                |(bi, bv), (i, &v)| {
                    if v > bv {
                        (i, v)
                    } else {
                        (bi, bv)
                    }
                },
            );
        // The R peak is near 46 % of the beat and dominates.
        assert!((0.35..0.6).contains(&(imax as f64 / 30.0)));
        assert!(max > 0.8);
    }

    #[test]
    fn ecg_corpus_truth_covers_every_beat() {
        let cfg = EcgConfig {
            traces: 3,
            beats_per_trace: 5,
            ..Default::default()
        };
        let (store, truth) = ecg_corpus(&cfg);
        assert_eq!(store.len(), 3);
        assert_eq!(truth.len(), 15);
        // Beats tile each trace exactly.
        for t in 0..3u32 {
            let mut pos = 0u32;
            for occ in truth.iter().filter(|o| o.seq == SeqId(t)) {
                assert_eq!(occ.start, pos);
                pos += occ.len;
            }
            assert_eq!(pos as usize, store.get(SeqId(t)).len());
        }
    }

    #[test]
    fn resample_endpoints_and_length() {
        let p = [0.0, 10.0, 20.0];
        for n in [2usize, 3, 7, 50] {
            let r = resample(&p, n);
            assert_eq!(r.len(), n);
            assert!((r[0] - 0.0).abs() < 1e-9);
            assert!((r[n - 1] - 20.0).abs() < 1e-9);
            // Monotone input stays monotone under linear resampling.
            for w in r.windows(2) {
                assert!(w[0] <= w[1] + 1e-9);
            }
        }
        assert_eq!(resample(&[5.0], 4), vec![5.0; 4]);
    }

    #[test]
    fn planted_corpus_embeds_patterns() {
        let cfg = PlantConfig {
            sequences: 4,
            len: 200,
            plants: 8,
            noise_std: 0.0,
            ..Default::default()
        };
        let (store, truth) = planted_corpus(&cfg);
        assert_eq!(store.len(), 4);
        assert!(!truth.is_empty());
        for occ in &truth {
            let sub = store.occurrence_values(*occ);
            let expected = resample(&cfg.pattern, occ.len as usize);
            for (a, b) in sub.iter().zip(&expected) {
                assert!((a - b).abs() < 1e-9, "noiseless plant verbatim");
            }
        }
        // Plants vary in length (time stretching).
        let lens: std::collections::HashSet<u32> = truth.iter().map(|o| o.len).collect();
        assert!(lens.len() > 1);
    }

    #[test]
    fn planted_corpus_deterministic() {
        let cfg = PlantConfig::default();
        let (a, ta) = planted_corpus(&cfg);
        let (b, tb) = planted_corpus(&cfg);
        assert_eq!(ta, tb);
        for (id, s) in a.iter() {
            assert_eq!(s.values(), b.get(id).values());
        }
    }
}
