#![warn(missing_docs)]

//! # warptree-data
//!
//! Evaluation workloads for the Park et al. (ICDE 2000) reproduction:
//! deterministic synthetic corpora ([`gen`]) standing in for the paper's
//! S&P 500 dataset, the paper's artificial random walks, stratified query
//! workloads ([`workload`]), and plain-text sequence I/O ([`io`]).

pub mod gen;
pub mod io;
pub mod signals;
pub mod workload;

pub use gen::{
    artificial_corpus, band_for_index, stock_corpus, ArtificialConfig, StockConfig, PRICE_BANDS,
};
pub use io::{load_csv, load_ucr_tsv, save_csv};
pub use signals::{ecg_corpus, heartbeat, planted_corpus, resample, EcgConfig, PlantConfig};
pub use workload::{Query, QueryConfig, QueryWorkload};
