//! Query workloads (paper §7).
//!
//! The paper draws query sequences from the database itself, stratified
//! by average price: 20 % from stocks averaging below $30, 50 % from
//! $30–60, 30 % above. Query length averages 20. [`QueryWorkload`]
//! reproduces that sampling; optional perturbation turns exact
//! subsequences into near matches so non-trivial ε thresholds have work
//! to do.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warptree_core::sequence::{SeqId, SequenceStore, Value};

/// Configuration of query extraction.
#[derive(Debug, Clone)]
pub struct QueryConfig {
    /// Number of queries to draw.
    pub count: usize,
    /// Mean query length (paper: 20).
    pub mean_len: usize,
    /// Uniform jitter on the length (`mean ± jitter`).
    pub len_jitter: usize,
    /// Std-dev of additive perturbation applied per element (0 = exact
    /// subsequences).
    pub noise_std: f64,
    /// Band boundaries on sequence *average* value: sequences are
    /// stratified into `< b0`, `b0..b1`, `>= b1` with the 20/50/30 draw
    /// proportions of the paper. `None` disables stratification.
    pub bands: Option<(f64, f64)>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            count: 20,
            mean_len: 20,
            len_jitter: 4,
            noise_std: 0.0,
            bands: Some((30.0, 60.0)),
            seed: 0x9E2_0001,
        }
    }
}

/// One query with its provenance.
#[derive(Debug, Clone)]
pub struct Query {
    /// The query values.
    pub values: Vec<Value>,
    /// Sequence the query was extracted from.
    pub source: SeqId,
    /// Extraction offset.
    pub start: u32,
}

/// A reproducible set of queries over a store.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    queries: Vec<Query>,
}

impl QueryWorkload {
    /// Draws queries from `store` per `cfg`.
    ///
    /// # Panics
    /// Panics when the store is empty or all sequences are shorter than
    /// two elements.
    pub fn draw(store: &SequenceStore, cfg: &QueryConfig) -> Self {
        assert!(!store.is_empty(), "cannot draw queries from empty store");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Partition sequence ids by band of their average value.
        let mut bands: [Vec<SeqId>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (id, s) in store.iter() {
            if s.len() < 2 {
                continue;
            }
            let idx = match cfg.bands {
                None => 0,
                Some((b0, b1)) => {
                    let avg: f64 = s.values().iter().sum::<f64>() / s.len() as f64;
                    if avg < b0 {
                        0
                    } else if avg < b1 {
                        1
                    } else {
                        2
                    }
                }
            };
            bands[idx].push(id);
        }
        assert!(
            bands.iter().any(|b| !b.is_empty()),
            "no usable sequences for queries"
        );
        let proportions = if cfg.bands.is_some() {
            [0.20, 0.50, 0.30]
        } else {
            [1.0, 0.0, 0.0]
        };
        let mut queries = Vec::with_capacity(cfg.count);
        for q in 0..cfg.count {
            // Pick the band by the paper's proportions, falling back to
            // any non-empty band.
            let f = (q as f64 + 0.5) / cfg.count as f64;
            let mut want = if f < proportions[0] {
                0
            } else if f < proportions[0] + proportions[1] {
                1
            } else {
                2
            };
            if bands[want].is_empty() {
                want = (0..3).find(|&b| !bands[b].is_empty()).unwrap();
            }
            let source = bands[want][rng.gen_range(0..bands[want].len())];
            let seq = store.get(source);
            let len = if cfg.len_jitter == 0 {
                cfg.mean_len
            } else {
                rng.gen_range(
                    cfg.mean_len.saturating_sub(cfg.len_jitter)..=cfg.mean_len + cfg.len_jitter,
                )
            }
            .clamp(1, seq.len());
            let start = rng.gen_range(0..=seq.len() - len) as u32;
            let mut values = seq.subseq(start, len as u32).to_vec();
            if cfg.noise_std > 0.0 {
                for v in &mut values {
                    // Box–Muller.
                    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                    *v += z * cfg.noise_std;
                }
            }
            queries.push(Query {
                values,
                source,
                start,
            });
        }
        Self { queries }
    }

    /// The queries, in draw order.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{stock_corpus, StockConfig};

    #[test]
    fn draw_is_deterministic() {
        let store = stock_corpus(&StockConfig {
            sequences: 30,
            ..Default::default()
        });
        let cfg = QueryConfig::default();
        let a = QueryWorkload::draw(&store, &cfg);
        let b = QueryWorkload::draw(&store, &cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x.values, y.values);
        }
    }

    #[test]
    fn queries_are_subsequences_when_noiseless() {
        let store = stock_corpus(&StockConfig {
            sequences: 30,
            ..Default::default()
        });
        let w = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: 10,
                noise_std: 0.0,
                ..Default::default()
            },
        );
        for q in w.queries() {
            let src = store.get(q.source);
            assert_eq!(src.subseq(q.start, q.values.len() as u32), &q.values[..]);
        }
    }

    #[test]
    fn lengths_respect_config() {
        let store = stock_corpus(&StockConfig {
            sequences: 30,
            ..Default::default()
        });
        let w = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: 50,
                mean_len: 20,
                len_jitter: 4,
                ..Default::default()
            },
        );
        for q in w.queries() {
            assert!((16..=24).contains(&q.values.len()));
        }
    }

    #[test]
    fn noise_perturbs_values() {
        let store = stock_corpus(&StockConfig {
            sequences: 10,
            ..Default::default()
        });
        let w = QueryWorkload::draw(
            &store,
            &QueryConfig {
                count: 5,
                noise_std: 1.0,
                ..Default::default()
            },
        );
        let any_differs = w.queries().iter().any(|q| {
            let src = store.get(q.source);
            src.subseq(q.start, q.values.len() as u32) != &q.values[..]
        });
        assert!(any_differs);
    }

    #[test]
    #[should_panic(expected = "empty store")]
    fn empty_store_panics() {
        let store = SequenceStore::new();
        let _ = QueryWorkload::draw(&store, &QueryConfig::default());
    }

    #[test]
    fn unstratified_draw_works() {
        let store = stock_corpus(&StockConfig {
            sequences: 5,
            ..Default::default()
        });
        let w = QueryWorkload::draw(
            &store,
            &QueryConfig {
                bands: None,
                count: 8,
                ..Default::default()
            },
        );
        assert_eq!(w.len(), 8);
    }
}
