//! Plain-text sequence I/O: one sequence per line, comma-separated
//! values, optionally prefixed by a name token (`AAPL, 30.1, 30.5, …`).
//! Lets users run the index over their own data (stock exports, ECG
//! dumps, …) without writing code.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use warptree_core::sequence::{Sequence, SequenceStore};

/// Loads a CSV-ish file: one sequence per line, values separated by
/// commas (whitespace tolerated); empty lines and `#` comments skipped.
pub fn load_csv(path: &Path) -> std::io::Result<SequenceStore> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut store = SequenceStore::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    while reader.read_line(&mut line)? != 0 {
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() && !trimmed.starts_with('#') {
            let mut values = Vec::new();
            let mut name: Option<String> = None;
            for (i, tok) in trimmed.split(',').enumerate() {
                let tok = tok.trim();
                if tok.is_empty() {
                    continue;
                }
                match tok.parse::<f64>() {
                    Ok(v) if v.is_finite() => values.push(v),
                    Ok(_) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {lineno}: non-finite value"),
                        ))
                    }
                    // A non-numeric FIRST token names the sequence.
                    Err(_) if i == 0 => name = Some(tok.to_string()),
                    Err(e) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidData,
                            format!("line {lineno}: bad value {tok:?}: {e}"),
                        ))
                    }
                }
            }
            if !values.is_empty() {
                match name {
                    Some(n) => store.push_named(Sequence::new(values), n),
                    None => store.push(Sequence::new(values)),
                };
            }
        }
        line.clear();
    }
    Ok(store)
}

/// Loads a UCR-archive-style TSV file: one series per line, the first
/// field an integer class label, remaining fields the values, separated
/// by tabs (or any whitespace). The class label becomes the sequence
/// name `"class<label>#<ordinal>"` so downstream tooling can stratify
/// by class.
pub fn load_ucr_tsv(path: &Path) -> std::io::Result<SequenceStore> {
    let file = std::fs::File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut store = SequenceStore::new();
    let mut line = String::new();
    let mut lineno = 0usize;
    let mut per_class: std::collections::HashMap<i64, usize> = std::collections::HashMap::new();
    while reader.read_line(&mut line)? != 0 {
        lineno += 1;
        let trimmed = line.trim();
        if !trimmed.is_empty() {
            let mut tokens = trimmed.split_whitespace();
            let label: i64 = tokens
                .next()
                .expect("non-empty line has a token")
                .parse()
                .map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("line {lineno}: bad class label: {e}"),
                    )
                })?;
            let mut values = Vec::new();
            for tok in tokens {
                let v: f64 = tok.parse().map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("line {lineno}: bad value {tok:?}: {e}"),
                    )
                })?;
                if !v.is_finite() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("line {lineno}: non-finite value"),
                    ));
                }
                values.push(v);
            }
            if values.is_empty() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {lineno}: class label without values"),
                ));
            }
            let ordinal = per_class.entry(label).or_insert(0);
            store.push_named(Sequence::new(values), format!("class{label}#{ordinal}"));
            *ordinal += 1;
        }
        line.clear();
    }
    Ok(store)
}

/// Writes a store in the [`load_csv`] format.
pub fn save_csv(store: &SequenceStore, path: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    for (id, s) in store.iter() {
        let mut first = true;
        if let Some(name) = store.name(id) {
            write!(w, "{name}")?;
            first = false;
        }
        for v in s.values() {
            if !first {
                write!(w, ",")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("warptree-io-{}-{}", std::process::id(), name))
    }

    #[test]
    fn roundtrip() {
        let store = SequenceStore::from_values(vec![vec![1.0, 2.5, -3.0], vec![7.125]]);
        let path = tmp("roundtrip.csv");
        save_csv(&store, &path).unwrap();
        let loaded = load_csv(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        for (id, s) in store.iter() {
            assert_eq!(loaded.get(id).values(), s.values());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let path = tmp("comments.csv");
        std::fs::write(&path, "# header\n\n1, 2, 3\n\n# tail\n4,5\n").unwrap();
        let store = load_csv(&path).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get(warptree_core::sequence::SeqId(0)).len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn names_roundtrip() {
        let mut store = SequenceStore::new();
        store.push_named(Sequence::new(vec![1.0, 2.0]), "AAPL");
        store.push(Sequence::new(vec![3.0]));
        let path = tmp("names.csv");
        save_csv(&store, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with(
            "AAPL,1,2
"
        ));
        let loaded = load_csv(&path).unwrap();
        use warptree_core::sequence::SeqId;
        assert_eq!(loaded.name(SeqId(0)), Some("AAPL"));
        assert_eq!(loaded.name(SeqId(1)), None);
        assert_eq!(loaded.get(SeqId(0)).values(), &[1.0, 2.0]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.csv");
        std::fs::write(&path, "1,banana,3\n").unwrap();
        let err = load_csv(&path).unwrap_err();
        assert!(err.to_string().contains("banana"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ucr_tsv_loads_with_class_names() {
        let path = tmp("ucr.tsv");
        std::fs::write(
            &path,
            "1	0.5	0.6	0.7
2	9.0	9.1
1	0.4	0.5	0.6
",
        )
        .unwrap();
        let store = load_ucr_tsv(&path).unwrap();
        use warptree_core::sequence::SeqId;
        assert_eq!(store.len(), 3);
        assert_eq!(store.name(SeqId(0)), Some("class1#0"));
        assert_eq!(store.name(SeqId(1)), Some("class2#0"));
        assert_eq!(store.name(SeqId(2)), Some("class1#1"));
        assert_eq!(store.get(SeqId(1)).values(), &[9.0, 9.1]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn ucr_tsv_rejects_bad_rows() {
        let path = tmp("ucr-bad.tsv");
        std::fs::write(
            &path,
            "notanumber	1.0
",
        )
        .unwrap();
        assert!(load_ucr_tsv(&path).is_err());
        std::fs::write(
            &path, "3
",
        )
        .unwrap();
        assert!(load_ucr_tsv(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rejects_non_finite() {
        let path = tmp("inf.csv");
        std::fs::write(&path, "1,inf,3\n").unwrap();
        assert!(load_csv(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }
}
