//! Synthetic data generators reproducing the paper's evaluation
//! workloads (§7).
//!
//! * [`stock_corpus`] — a stand-in for the paper's S&P 500 daily-closing
//!   dataset (545 sequences, mean length 232), which is no longer
//!   obtainable. A geometric random walk with the paper's price-band
//!   mixture (20 % of series below $30, 50 % in $30–60, 30 % above)
//!   reproduces the properties the index exploits: positive,
//!   autocorrelated values whose categorized forms contain long runs.
//! * [`artificial_corpus`] — exactly the paper's artificial data:
//!   `S_i[p] = S_i[p-1] + Z_p` with i.i.d. `Z_p`.
//!
//! All generators are deterministic given their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use warptree_core::sequence::{Sequence, SequenceStore};

/// Standard-normal sample via Box–Muller (keeps us off `rand_distr`).
fn normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Configuration of the synthetic stock generator.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Number of sequences (paper: 545).
    pub sequences: usize,
    /// Mean sequence length (paper: 232).
    pub mean_len: usize,
    /// Standard deviation of sequence lengths.
    pub len_std: f64,
    /// Daily relative volatility (multiplicative step σ).
    pub volatility: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StockConfig {
    fn default() -> Self {
        Self {
            sequences: 545,
            mean_len: 232,
            len_std: 40.0,
            volatility: 0.02,
            seed: 0x5AD_0001,
        }
    }
}

/// Price bands used by the paper to stratify queries: 20 % of stocks
/// average below $30, 50 % between $30 and $60, 30 % above $60.
pub const PRICE_BANDS: [(f64, f64, f64); 3] =
    [(0.20, 5.0, 30.0), (0.50, 30.0, 60.0), (0.30, 60.0, 150.0)];

/// Generates the synthetic stock corpus.
pub fn stock_corpus(cfg: &StockConfig) -> SequenceStore {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = SequenceStore::new();
    for i in 0..cfg.sequences {
        // Stratified starting price by band.
        let band = band_for_index(i, cfg.sequences);
        let (_, lo, hi) = PRICE_BANDS[band];
        let start = rng.gen_range(lo..hi);
        let len = (cfg.mean_len as f64 + normal(&mut rng) * cfg.len_std)
            .round()
            .clamp(20.0, 4.0 * cfg.mean_len as f64) as usize;
        let mut price = start;
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push((price * 100.0).round() / 100.0); // cents
            let step = normal(&mut rng) * cfg.volatility;
            price = (price * (1.0 + step)).max(0.25);
        }
        // Ticker-style names make CLI and example output readable.
        store.push_named(Sequence::new(values), format!("STK{i:04}"));
    }
    store
}

/// Deterministically assigns sequence `i` of `n` to a price band with the
/// paper's 20/50/30 proportions.
pub fn band_for_index(i: usize, n: usize) -> usize {
    let f = (i as f64 + 0.5) / n as f64;
    if f < PRICE_BANDS[0].0 {
        0
    } else if f < PRICE_BANDS[0].0 + PRICE_BANDS[1].0 {
        1
    } else {
        2
    }
}

/// Configuration of the paper's artificial random-walk generator.
#[derive(Debug, Clone)]
pub struct ArtificialConfig {
    /// Number of sequences.
    pub sequences: usize,
    /// Length of every sequence (the paper holds length fixed per
    /// experiment; set `len_jitter` for variation).
    pub len: usize,
    /// Uniform jitter applied to each length (`len ± jitter`).
    pub len_jitter: usize,
    /// Standard deviation of the i.i.d. step `Z_p`.
    pub step_std: f64,
    /// Range of starting values.
    pub start_range: (f64, f64),
    /// RNG seed.
    pub seed: u64,
}

impl Default for ArtificialConfig {
    fn default() -> Self {
        Self {
            sequences: 200,
            len: 200,
            len_jitter: 0,
            step_std: 1.0,
            start_range: (0.0, 100.0),
            seed: 0xA27_0001,
        }
    }
}

/// Generates the paper's artificial sequences:
/// `S_i[p] = S_i[p-1] + Z_p`, `Z_p` i.i.d. normal.
pub fn artificial_corpus(cfg: &ArtificialConfig) -> SequenceStore {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut store = SequenceStore::new();
    for _ in 0..cfg.sequences {
        let len = if cfg.len_jitter == 0 {
            cfg.len
        } else {
            rng.gen_range(cfg.len.saturating_sub(cfg.len_jitter)..=cfg.len + cfg.len_jitter)
        }
        .max(1);
        let mut v = rng.gen_range(cfg.start_range.0..cfg.start_range.1);
        let mut values = Vec::with_capacity(len);
        for _ in 0..len {
            values.push(v);
            v += normal(&mut rng) * cfg.step_std;
        }
        store.push(Sequence::new(values));
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_corpus_is_deterministic() {
        let cfg = StockConfig {
            sequences: 10,
            ..Default::default()
        };
        let a = stock_corpus(&cfg);
        let b = stock_corpus(&cfg);
        for (id, s) in a.iter() {
            assert_eq!(s.values(), b.get(id).values());
        }
    }

    #[test]
    fn stock_corpus_shape() {
        let cfg = StockConfig {
            sequences: 100,
            mean_len: 100,
            len_std: 10.0,
            ..Default::default()
        };
        let store = stock_corpus(&cfg);
        assert_eq!(store.len(), 100);
        let mean = store.mean_len();
        assert!((80.0..120.0).contains(&mean), "mean length {mean}");
        // Prices positive.
        let (lo, _) = store.value_range().unwrap();
        assert!(lo > 0.0);
    }

    #[test]
    fn stocks_are_named() {
        let store = stock_corpus(&StockConfig {
            sequences: 3,
            ..Default::default()
        });
        use warptree_core::sequence::SeqId;
        assert_eq!(store.name(SeqId(0)), Some("STK0000"));
        assert_eq!(store.display_name(SeqId(2)), "STK0002");
    }

    #[test]
    fn band_proportions() {
        let n = 1000;
        let mut counts = [0usize; 3];
        for i in 0..n {
            counts[band_for_index(i, n)] += 1;
        }
        assert_eq!(counts, [200, 500, 300]);
    }

    #[test]
    fn artificial_corpus_matches_recurrence_shape() {
        let cfg = ArtificialConfig {
            sequences: 20,
            len: 50,
            ..Default::default()
        };
        let store = artificial_corpus(&cfg);
        assert_eq!(store.len(), 20);
        for (_, s) in store.iter() {
            assert_eq!(s.len(), 50);
            // Steps should look like unit-variance noise: no jumps far
            // beyond a few σ.
            for w in s.values().windows(2) {
                assert!((w[1] - w[0]).abs() < 8.0);
            }
        }
    }

    #[test]
    fn artificial_len_jitter_varies_lengths() {
        let cfg = ArtificialConfig {
            sequences: 50,
            len: 100,
            len_jitter: 20,
            ..Default::default()
        };
        let store = artificial_corpus(&cfg);
        let lens: std::collections::HashSet<usize> = store.iter().map(|(_, s)| s.len()).collect();
        assert!(lens.len() > 1);
        for l in lens {
            assert!((80..=120).contains(&l));
        }
    }

    #[test]
    fn normal_has_roughly_unit_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
