//! `warptree` — command-line front end for the time-warping subsequence
//! search index.
//!
//! ```text
//! warptree gen    --kind stock --sequences 200 --len 150 --out data.csv
//! warptree build  --input data.csv --method me --categories 40 \
//!                 --sparse --out-dir ./idx
//! warptree info   --index-dir ./idx
//! warptree verify ./idx
//! warptree search --index-dir ./idx --query 30.1,30.5,31.0 --epsilon 5
//! warptree knn    --index-dir ./idx --query 30.1,30.5,31.0 --k 5
//! warptree scan   --input data.csv --query 30.1,30.5 --epsilon 5
//! ```
//!
//! `build` writes an index directory into `--out-dir`: the corpus file
//! (sequences + categorization), the suffix-tree file (constructed
//! incrementally with binary merges), and a `MANIFEST` naming the
//! committed generation of each. `build` and `append` are crash-safe —
//! every mutation is staged under temporary names and committed by an
//! atomic manifest swap, and opening an index recovers from any
//! interrupted mutation. `verify` checks every page CRC and the manifest
//! without modifying anything.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use warptree::prelude::*;
use warptree::{
    build_index_dir_backend, build_index_dir_backend_metered, open_index_dir,
    open_index_dir_metered, resolve_index_dir,
};
use warptree_data::{load_csv, save_csv};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gen") => cmd_gen(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("append") => cmd_append(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("scrub") => cmd_scrub(&args[1..]),
        Some("search") => cmd_search(&args[1..], false),
        Some("knn") => cmd_search(&args[1..], true),
        Some("explain") => cmd_explain(&args[1..]),
        Some("scan") => cmd_scan(&args[1..]),
        Some("mine") => cmd_mine(&args[1..]),
        Some("forecast") => cmd_forecast(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("shard-init") => cmd_shard_init(&args[1..]),
        Some("shard-coordinator") => cmd_shard_coordinator(&args[1..]),
        Some("slowlog") => cmd_slowlog(&args[1..]),
        Some("bench-client") => cmd_bench_client(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run `warptree help` for usage");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "warptree — time-warping subsequence similarity search \
         (Park et al., ICDE 2000)\n\n\
         commands:\n\
         \u{20}  gen     generate a synthetic corpus as CSV\n\
         \u{20}          --kind stock|walk --sequences N --len L \
         [--seed S] --out FILE\n\
         \u{20}  build   build corpus + index files from a CSV\n\
         \u{20}          --input FILE --method me|el|exact|kmeans \
         [--categories C] [--sparse]\n\
         \u{20}          [--batch B] [--backend tree|esa] --out-dir DIR  \
         (esa: enhanced suffix array, identical answers, smaller \
         resident size)\n\
         \u{20}  append  add sequences from a CSV to an existing index \
         as a tail segment (crash-safe)\n\
         \u{20}          --input FILE --index-dir DIR [--merge: fold \
         into the base tree immediately]\n\
         \u{20}  compact fold tail segments back into the base tree \
         (binary merge, one generation per fold)\n\
         \u{20}          DIR (or --index-dir DIR)\n\
         \u{20}  info    print index statistics\n\
         \u{20}          --index-dir DIR [--deep] [--json]\n\
         \u{20}  verify  check every page CRC and the commit manifest\n\
         \u{20}          DIR (or --index-dir DIR) [--deep: read every \
         page through the query read path]\n\
         \u{20}  scrub   verify every page and repair: quarantine \
         corrupt tail segments, rebuild them from the corpus\n\
         \u{20}          DIR (or --index-dir DIR) [--check-only]\n\
         \u{20}  search  threshold search over a built index\n\
         \u{20}          --index-dir DIR --query v1,v2,…|--query-file F \
         --epsilon E [--window W] [--limit N] [--threads N] [--trace] \
         [--no-cascade]\n\
         \u{20}  knn     k-nearest-neighbour search over a built index\n\
         \u{20}          --index-dir DIR --query v1,v2,… --k K [--window W] \
         [--threads N] [--trace] [--no-cascade]\n\
         \u{20}  explain report one search's filter funnel, table work \
         and I/O profile\n\
         \u{20}          --index-dir DIR --query v1,v2,… --epsilon E \
         [--window W] [--json] [--no-cascade]\n\
         \u{20}  scan    index-free exact scan over a CSV\n\
         \u{20}          --input FILE --query v1,v2,… --epsilon E\n\
         \u{20}\n\
         \u{20}  build, search, knn and scan accept --stats[=json] to dump \
         a metrics snapshot to stderr\n\
         \u{20}  mine    most frequent shape motifs (full index only)\n\
         \u{20}          --index-dir DIR [--len L] [--k K]\n\
         \u{20}  forecast  aggregate what followed similar histories\n\
         \u{20}          --index-dir DIR --query v1,v2,… --epsilon E \
         [--horizon H] [--window W]\n\
         \u{20}  serve   serve an index directory over TCP \
         (length-prefixed JSON protocol)\n\
         \u{20}          DIR [--addr HOST:PORT] [--workers N] \
         [--queue-depth Q] [--deadline-ms D]\n\
         \u{20}          [--reload-ms R] [--max-query-len L] \
         [--max-conns C] [--threads N] [--compact-threshold T] \
         [--scrub-interval-ms S]\n\
         \u{20}          [--slow-ms MS: slow-query ring threshold, \
         0 disables] [--trace-sample N: trace 1-in-N requests]\n\
         \u{20}          [--slowlog-capacity K] [--metrics-addr \
         HOST:PORT: plain-HTTP GET /metrics Prometheus exposition]\n\
         \u{20}          SIGINT/SIGTERM drain gracefully, new index \
         generations are hot-reloaded from the commit manifest,\n\
         \u{20}          `ingest` appends tail segments online and a \
         background worker folds them at T tails (0 disables)\n\
         \u{20}  shard-init  partition a CSV corpus into N per-shard \
         index directories + a SHARDS manifest\n\
         \u{20}          --input FILE --shards N --out-dir DIR \
         [--method me|el|exact|kmeans] [--categories C]\n\
         \u{20}          [--sparse] [--batch B] [--backend tree|esa]  \
         (one global alphabet; shard answers merge byte-identically)\n\
         \u{20}  shard-coordinator  serve a sharded corpus by \
         scatter-gather over running shard servers\n\
         \u{20}          DIR --shards ADDR,ADDR,… [--addr HOST:PORT] \
         [--workers N] [--deadline-ms D]\n\
         \u{20}          [--shard-timeout-ms T] [--max-conns C] \
         [--health-interval-ms H] [--slow-ms MS]\n\
         \u{20}          [--trace-sample N] [--slowlog-capacity K]  \
         (shard addresses in manifest order)\n\
         \u{20}  slowlog dump a running server's slow-query ring \
         (newest first)\n\
         \u{20}          --addr HOST:PORT [--json] [--traces: include \
         span trees]\n\
         \u{20}  bench-client  drive a running server and report \
         throughput + latency quantiles\n\
         \u{20}          --addr HOST:PORT --input FILE \
         [--connections C] [--requests N]\n\
         \u{20}          [--mode closed|open] [--rate RPS] \
         [--epsilons e1,e2,…] [--window W]\n\
         \u{20}          [--queries K] [--seed S] [--out BENCH_serve.json]"
    );
}

/// Minimal `--flag value` / `--flag` parser.
struct Opts {
    pairs: Vec<(String, Option<String>)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                return Err(format!("unexpected argument {a:?}"));
            };
            // `--flag=value` binds tighter than the next-token rule, so
            // valueless flags like `--stats=json` stay unambiguous.
            if let Some((name, value)) = name.split_once('=') {
                pairs.push((name.to_string(), Some(value.to_string())));
                continue;
            }
            let value = match it.peek() {
                Some(v) if !v.starts_with("--") => Some(it.next().unwrap().clone()),
                _ => None,
            };
            pairs.push((name.to_string(), value));
        }
        Ok(Self { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    fn flag(&self, name: &str) -> bool {
        self.pairs.iter().any(|(n, _)| n == name)
    }

    fn require(&self, name: &str) -> Result<&str, String> {
        self.get(name)
            .ok_or_else(|| format!("missing required --{name}"))
    }

    fn parse_num<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: cannot parse {v:?}")),
        }
    }
}

/// Output format of a `--stats[=json]` metrics dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    Text,
    Json,
}

/// Parses `--stats` / `--stats=json`; `None` when the flag is absent.
fn stats_mode(o: &Opts) -> Result<Option<StatsFormat>, String> {
    if !o.flag("stats") {
        return Ok(None);
    }
    match o.get("stats") {
        None => Ok(Some(StatsFormat::Text)),
        Some("json") => Ok(Some(StatsFormat::Json)),
        Some(other) => Err(format!(
            "--stats: unknown format {other:?} (use --stats or --stats=json)"
        )),
    }
}

/// Dumps the registry snapshot to stderr (stdout stays machine-usable).
fn emit_stats(fmt: StatsFormat, reg: &MetricsRegistry) {
    let snap = reg.snapshot();
    match fmt {
        StatsFormat::Json => eprintln!("{}", snap.to_json()),
        StatsFormat::Text => eprintln!("{snap}"),
    }
}

/// Resolves the query from `--query v1,v2,…` or `--query-file FILE`
/// (one value per line or comma-separated).
fn resolve_query(o: &Opts) -> Result<Vec<f64>, String> {
    match (o.get("query"), o.get("query-file")) {
        (Some(text), None) => parse_query(text),
        (None, Some(path)) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("--query-file: {e}"))?;
            let joined = text
                .split(['\n', ','])
                .map(str::trim)
                .filter(|t| !t.is_empty())
                .collect::<Vec<_>>()
                .join(",");
            parse_query(&joined)
        }
        (Some(_), Some(_)) => Err("use either --query or --query-file, not both".into()),
        (None, None) => Err("missing required --query (or --query-file)".into()),
    }
}

fn parse_query(text: &str) -> Result<Vec<f64>, String> {
    let values: Result<Vec<f64>, _> = text.split(',').map(|t| t.trim().parse::<f64>()).collect();
    let values = values.map_err(|e| format!("bad query value: {e}"))?;
    if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
        return Err("query must be non-empty, finite numbers".into());
    }
    Ok(values)
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let out = PathBuf::from(o.require("out")?);
    let sequences: usize = o.parse_num("sequences", 200)?;
    let len: usize = o.parse_num("len", 150)?;
    let seed: u64 = o.parse_num("seed", 1)?;
    let store = match o.get("kind").unwrap_or("stock") {
        "stock" => stock_corpus(&StockConfig {
            sequences,
            mean_len: len,
            seed,
            ..Default::default()
        }),
        "walk" => artificial_corpus(&ArtificialConfig {
            sequences,
            len,
            seed,
            ..Default::default()
        }),
        other => return Err(format!("unknown --kind {other:?}")),
    };
    save_csv(&store, &out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} sequences ({} values) to {}",
        store.len(),
        store.total_len(),
        out.display()
    );
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let input = PathBuf::from(o.require("input")?);
    let out_dir = PathBuf::from(o.require("out-dir")?);
    let categories: usize = o.parse_num("categories", 40)?;
    let batch: usize = o.parse_num("batch", 64)?;
    let sparse = o.flag("sparse");
    let store = load_csv(&input).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err("input contains no sequences".into());
    }
    let cat = match o.get("method").unwrap_or("me") {
        "me" => Categorization::MaxEntropy(categories),
        "el" => Categorization::EqualLength(categories),
        "exact" => Categorization::Exact,
        "kmeans" => Categorization::KMeans(categories),
        other => return Err(format!("unknown --method {other:?}")),
    };
    let backend = match o.get("backend").unwrap_or("tree") {
        "tree" => BackendKind::Tree,
        "esa" => BackendKind::Esa,
        other => return Err(format!("unknown --backend {other:?} (tree or esa)")),
    };
    let stats = stats_mode(&o)?;
    let t0 = std::time::Instant::now();
    let bytes = match stats {
        None => build_index_dir_backend(&store, cat, sparse, batch, backend, &out_dir)
            .map_err(|e| e.to_string())?,
        Some(_) => {
            let reg = MetricsRegistry::new();
            let bytes = build_index_dir_backend_metered(
                &store, cat, sparse, batch, backend, &out_dir, &reg,
            )
            .map_err(|e| e.to_string())?;
            emit_stats(stats.unwrap(), &reg);
            bytes
        }
    };
    let (corpus_path, index_path) = resolve_index_dir(&out_dir).map_err(|e| e.to_string())?;
    println!(
        "built {} {} index over {} sequences: {} KiB in {:.2?}",
        if sparse { "sparse" } else { "full" },
        backend.as_str(),
        store.len(),
        bytes / 1024,
        t0.elapsed()
    );
    println!("  corpus: {}", corpus_path.display());
    println!("  index:  {}", index_path.display());
    Ok(())
}

fn cmd_append(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let input = PathBuf::from(o.require("input")?);
    let dir = PathBuf::from(o.require("index-dir")?);
    let new = load_csv(&input).map_err(|e| e.to_string())?;
    if new.is_empty() {
        return Err("input contains no sequences".into());
    }
    let t0 = std::time::Instant::now();
    if o.flag("merge") {
        // Legacy mode: merge the new suffixes into the base tree right
        // now (one big rewrite, no tail segments).
        let bytes = warptree_disk::append_to_index_dir(&dir, &new).map_err(|e| e.to_string())?;
        println!(
            "appended {} sequences ({} values) in {:.2?}; index now {} KiB",
            new.len(),
            new.total_len(),
            t0.elapsed(),
            bytes / 1024
        );
        return Ok(());
    }
    let segments = warptree::append_index_dir(&dir, &new).map_err(|e| e.to_string())?;
    println!(
        "appended {} sequences ({} values) as a tail segment in {:.2?}; \
         {segments} segments live (run `warptree compact` to fold them)",
        new.len(),
        new.total_len(),
        t0.elapsed(),
    );
    Ok(())
}

fn cmd_compact(args: &[String]) -> Result<(), String> {
    // Accept the directory positionally (`warptree compact ./idx`) or
    // as `--index-dir ./idx`.
    let dir = match args.first() {
        Some(a) if !a.starts_with("--") => {
            if args.len() > 1 {
                return Err("compact takes a single directory".into());
            }
            PathBuf::from(a)
        }
        _ => PathBuf::from(Opts::parse(args)?.require("index-dir")?),
    };
    let t0 = std::time::Instant::now();
    let runs = warptree::compact_index_dir(&dir).map_err(|e| e.to_string())?;
    if runs == 0 {
        println!(
            "nothing to compact ({} has no tail segments)",
            dir.display()
        );
    } else {
        println!(
            "compacted {} in {runs} merge{} ({:.2?}); index is monolithic again",
            dir.display(),
            if runs == 1 { "" } else { "s" },
            t0.elapsed()
        );
    }
    Ok(())
}

fn open_index(dir: &Path) -> Result<DiskIndexDir, String> {
    let idx = open_index_dir(dir, 1024).map_err(|e| e.to_string())?;
    report_recovery(&idx);
    Ok(idx)
}

/// [`open_index`] with `disk.*` I/O metering on `reg`.
fn open_index_metered(dir: &Path, reg: &MetricsRegistry) -> Result<DiskIndexDir, String> {
    let idx = open_index_dir_metered(dir, 1024, reg).map_err(|e| e.to_string())?;
    report_recovery(&idx);
    Ok(idx)
}

fn report_recovery(idx: &DiskIndexDir) {
    if !idx.recovery.is_clean() {
        for line in idx.recovery.to_string().lines() {
            eprintln!("recovery: {line}");
        }
    }
}

/// Splits a positional directory out of `args`, wherever it appears
/// (`verify ./idx --deep` and `verify --deep ./idx` both work). Flags
/// in `valued` consume the following token as their value, so a
/// directory can't be mistaken for one flag's argument or vice versa.
fn split_positional_dir(args: &[String], valued: &[&str]) -> (Option<PathBuf>, Vec<String>) {
    let mut dir = None;
    let mut rest = Vec::new();
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            rest.push(a.clone());
            let name = name.split('=').next().unwrap_or(name);
            if !a.contains('=') && valued.contains(&name) {
                if let Some(v) = it.peek() {
                    if !v.starts_with("--") {
                        rest.push(it.next().unwrap().clone());
                    }
                }
            }
        } else if dir.is_none() {
            dir = Some(PathBuf::from(a));
        } else {
            // A second positional is an error; let Opts::parse say so.
            rest.push(a.clone());
        }
    }
    (dir, rest)
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    // Accept the directory positionally (`warptree verify ./idx`) or as
    // `--index-dir ./idx`.
    let (pos, rest) = split_positional_dir(args, &["index-dir"]);
    let o = Opts::parse(&rest)?;
    let dir = match pos {
        Some(d) => d,
        None => PathBuf::from(o.require("index-dir")?),
    };
    // `--deep` reads every committed page back through the CRC-checked
    // pager path — the exact read path queries use — instead of the
    // flat whole-file checksum walk. Slower, but it proves the index is
    // *servable*, not just byte-stable.
    let report = if o.flag("deep") {
        warptree_disk::verify_dir_deep_with(&warptree_disk::RealVfs, &dir)
            .map_err(|e| e.to_string())?
    } else {
        warptree_disk::verify_dir_with(&warptree_disk::RealVfs, &dir).map_err(|e| e.to_string())?
    };
    println!("{report}");
    if report.is_ok() {
        Ok(())
    } else {
        Err(format!("{} failed verification", dir.display()))
    }
}

fn cmd_scrub(args: &[String]) -> Result<(), String> {
    // Accept the directory positionally (`warptree scrub ./idx`) or as
    // `--index-dir ./idx`.
    let (pos, rest) = split_positional_dir(args, &["index-dir"]);
    let o = Opts::parse(&rest)?;
    let dir = match pos {
        Some(d) => d,
        None => PathBuf::from(o.require("index-dir")?),
    };
    // Healing (rebuilding quarantined segments from the corpus) is the
    // default; `--check-only` quarantines newly corrupt segments but
    // leaves existing tombstones in place.
    let heal = !o.flag("check-only");
    let reg = MetricsRegistry::new();
    let report = warptree_disk::scrub_dir_with(&warptree_disk::RealVfs, &dir, heal, &reg)
        .map_err(|e| e.to_string())?;
    println!("{report}");
    match &report.unrecoverable {
        None => Ok(()),
        Some(file) => Err(format!(
            "{file} is corrupt and cannot be rebuilt from the corpus"
        )),
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let dir = PathBuf::from(o.require("index-dir")?);
    let json = o.flag("json");
    let idx = open_index(&dir)?;
    let (store, alphabet, tree) = (&idx.store, &idx.alphabet, &idx.tree);
    let backend = tree.kind();
    let base_suffixes = warptree::core::search::IndexBackend::suffix_count(tree);
    // Tail segments hold real suffixes too; totals must cover them or
    // the compaction percentage drifts after every append.
    let tail_nodes: u64 = idx.segments.iter().map(|t| t.record_count()).sum();
    let tail_suffixes: u64 = idx
        .segments
        .iter()
        .map(warptree::core::search::IndexBackend::suffix_count)
        .sum();
    // Resident bytes across the base and every tail: the backend-size
    // stat the tree-vs-esa race compares.
    let resident_bytes: u64 = std::iter::once(tree)
        .chain(idx.segments.iter())
        .map(|t| t.resident_bytes())
        .sum();
    let (_, index_path) = resolve_index_dir(&dir).map_err(|e| e.to_string())?;
    let file_bytes = std::fs::metadata(&index_path)
        .map_err(|e| e.to_string())?
        .len();
    let manifest = warptree_disk::resolve_dir_with(&warptree_disk::RealVfs, &dir)
        .map_err(|e| e.to_string())?
        .manifest;
    // `--deep` materializes the tree for structural statistics; the
    // pager/cache traffic of that full scan doubles as a cache profile.
    // The ESA's records are already resident as flat arrays — there is
    // no tree to materialize, so structure is reported as null.
    let deep = if o.flag("deep") {
        let structure = match tree.as_tree() {
            Some(t) => {
                let mem = t.to_mem().map_err(|e| e.to_string())?;
                Some(warptree_suffix::TreeStats::compute(&mem))
            }
            None => None,
        };
        let io = tree.io_stats();
        let node_cache = tree.node_cache_stats();
        Some((structure, io, node_cache))
    } else {
        None
    };

    if json {
        use warptree::obs::json::{escape, num};
        let value_range = match store.value_range() {
            Some((lo, hi)) => format!("[{},{}]", num(lo), num(hi)),
            None => "null".into(),
        };
        let manifest_json = match &manifest {
            None => "null".into(),
            Some(m) => format!(
                concat!(
                    "{{\"generation\":{},\"corpus\":\"{}\",\"index\":\"{}\",",
                    "\"corpus_bytes\":{},\"index_bytes\":{}}}"
                ),
                m.generation,
                escape(&m.corpus),
                escape(&m.index),
                m.corpus_len,
                m.index_len,
            ),
        };
        let (structure_json, cache_json) = match &deep {
            None => ("null".into(), "null".into()),
            Some((structure, io, (nh, nm))) => (
                structure
                    .as_ref()
                    .map_or("null".to_string(), |s| s.to_json()),
                format!(
                    concat!(
                        "{{\"pages_read\":{},\"page_cache_hits\":{},",
                        "\"page_hit_rate\":{},\"node_cache_hits\":{},",
                        "\"node_cache_misses\":{}}}"
                    ),
                    io.pages_read,
                    io.cache_hits,
                    num(io.hit_rate()),
                    nh,
                    nm,
                ),
            ),
        };
        println!(
            concat!(
                "{{\"corpus\":{{\"sequences\":{},\"elements\":{},",
                "\"mean_len\":{},\"value_range\":{}}},",
                "\"categorization\":{{\"method\":\"{}\",\"categories\":{}}},",
                "\"index\":{{\"kind\":\"{}\",\"backend\":\"{}\",",
                "\"nodes\":{},\"suffixes\":{},",
                "\"depth_limit\":{},\"file_bytes\":{},\"resident_bytes\":{},",
                "\"generation\":{},",
                "\"segments\":{}}},",
                "\"manifest\":{},\"structure\":{},\"cache\":{}}}"
            ),
            store.len(),
            store.total_len(),
            num(store.mean_len()),
            value_range,
            escape(&alphabet.method().to_string()),
            alphabet.len(),
            if tree.is_sparse() { "sparse" } else { "full" },
            backend.as_str(),
            tree.record_count() + tail_nodes,
            base_suffixes + tail_suffixes,
            match tree.depth_limit() {
                Some(d) => d.to_string(),
                None => "null".into(),
            },
            file_bytes,
            resident_bytes,
            idx.generation,
            idx.segment_count(),
            manifest_json,
            structure_json,
            cache_json,
        );
        return Ok(());
    }

    println!("corpus:");
    println!("  sequences:      {}", store.len());
    println!("  elements:       {}", store.total_len());
    println!("  mean length:    {:.1}", store.mean_len());
    if let Some((lo, hi)) = store.value_range() {
        println!("  value range:    [{lo}, {hi}]");
    }
    println!("categorization:");
    println!("  method:         {}", alphabet.method());
    println!("  categories:     {}", alphabet.len());
    println!("index:");
    println!(
        "  kind:           {}",
        if tree.is_sparse() {
            "sparse (SST_C)"
        } else {
            "full (ST_C)"
        }
    );
    println!(
        "  backend:        {}",
        match backend {
            BackendKind::Tree => "tree (suffix tree)",
            BackendKind::Esa => "esa (enhanced suffix array)",
        }
    );
    println!("  nodes:          {}", tree.record_count() + tail_nodes);
    println!("  stored suffixes:{}", base_suffixes + tail_suffixes);
    println!(
        "  compaction:     {:.1}% of suffixes stored",
        100.0 * (base_suffixes + tail_suffixes) as f64 / store.total_len().max(1) as f64
    );
    match tree.depth_limit() {
        Some(d) => println!("  depth limit:    {d} (truncated, §8)"),
        None => println!("  depth limit:    none"),
    }
    println!("  file size:      {} KiB", file_bytes / 1024);
    println!("  resident size:  {} KiB", resident_bytes / 1024);
    println!("  generation:     {}", idx.generation);
    match idx.segment_count() {
        1 => println!("  segments:       1 (monolithic)"),
        n => println!(
            "  segments:       {n} (1 base + {} tail; `warptree compact` folds them)",
            n - 1
        ),
    }
    if let Some(m) = &manifest {
        println!("manifest:");
        println!(
            "  corpus:         {} ({} KiB)",
            m.corpus,
            m.corpus_len / 1024
        );
        println!("  index:          {} ({} KiB)", m.index, m.index_len / 1024);
    } else {
        println!("manifest:         none (legacy generation-0 directory)");
    }
    if let Some((structure, io, (nh, nm))) = &deep {
        match structure {
            Some(structure) => {
                println!("structure:");
                for line in structure.to_string().lines() {
                    println!("  {line}");
                }
            }
            None => println!("structure:        n/a (esa backend holds flat arrays, not a tree)"),
        }
        println!("cache (full-scan profile):");
        println!(
            "  pages read:     {} ({} pool hits, {:.1}% hit rate)",
            io.pages_read,
            io.cache_hits,
            100.0 * io.hit_rate()
        );
        println!("  node cache:     {nh} hits / {nm} misses");
    }
    Ok(())
}

fn cmd_search(args: &[String], knn: bool) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let dir = PathBuf::from(o.require("index-dir")?);
    let query = resolve_query(&o)?;
    let stats_fmt = stats_mode(&o)?;
    let reg = MetricsRegistry::new();
    let idx = match stats_fmt {
        Some(_) => open_index_metered(&dir, &reg)?,
        None => open_index(&dir)?,
    };
    let store = &idx.store;
    let window: Option<u32> = match o.get("window") {
        Some(w) => Some(w.parse().map_err(|_| "--window: bad value".to_string())?),
        None => None,
    };
    // `--trace` runs the search under an active span tree and prints
    // the rendered funnel (filter → prune → postprocess) to stderr;
    // results on stdout are byte-identical with or without it.
    let trace = if o.flag("trace") {
        warptree::obs::Trace::active("cli")
    } else {
        warptree::obs::Trace::noop()
    };
    let metrics = match stats_fmt {
        Some(_) => SearchMetrics::register(&reg),
        None => SearchMetrics::new(),
    }
    .with_trace(trace.clone());
    let threads: u32 = o.parse_num("threads", 1)?;
    // `--no-cascade` skips the lower-bound screens and verifies every
    // candidate against the exact table — answers are identical either
    // way (see `core::search::cascade`); the flag exists to measure
    // the cascade's work savings on a given corpus.
    let cascade = !o.flag("no-cascade");
    let t0 = std::time::Instant::now();
    if knn {
        let k: usize = o.parse_num("k", 5)?;
        let mut params = warptree::core::search::KnnParams::new(k);
        params.window = window;
        params.threads = threads;
        params.cascade = cascade;
        let req = QueryRequest::knn_params(&query, params);
        let matches = idx
            .query_with(&req, &metrics)
            .map_err(|e| e.to_string())?
            .into_ranked();
        println!(
            "{} nearest subsequences in {:.2?} ({} nodes visited):",
            matches.len(),
            t0.elapsed(),
            metrics.snapshot().nodes_visited
        );
        for m in matches {
            println!(
                "  {} ({})  dist {:.4}",
                m.occ,
                store.display_name(m.occ.seq),
                m.dist
            );
        }
    } else {
        let epsilon: f64 = o
            .require("epsilon")?
            .parse()
            .map_err(|_| "--epsilon: bad value".to_string())?;
        let limit: usize = o.parse_num("limit", 20)?;
        let mut params = SearchParams::with_epsilon(epsilon);
        params.window = window;
        params.threads = threads;
        params.cascade = cascade;
        let req = QueryRequest::threshold_params(&query, params);
        let answers = idx
            .query_with(&req, &metrics)
            .map_err(|e| e.to_string())?
            .into_answer_set();
        let stats = metrics.snapshot();
        println!(
            "{} answers within ε = {epsilon} in {:.2?} ({} candidates \
             verified, {} false alarms)",
            answers.len(),
            t0.elapsed(),
            stats.postprocessed,
            stats.false_alarms
        );
        for m in answers.top_k(limit) {
            println!(
                "  {} ({})  dist {:.4}",
                m.occ,
                store.display_name(m.occ.seq),
                m.dist
            );
        }
        if answers.len() > limit {
            println!("  … ({} more; raise --limit)", answers.len() - limit);
        }
    }
    if let Some(data) = trace.finish() {
        eprint!("{}", data.render());
    }
    if let Some(fmt) = stats_fmt {
        emit_stats(fmt, &reg);
    }
    Ok(())
}

fn cmd_explain(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let dir = PathBuf::from(o.require("index-dir")?);
    let query = resolve_query(&o)?;
    let epsilon: f64 = o
        .require("epsilon")?
        .parse()
        .map_err(|_| "--epsilon: bad value".to_string())?;
    let mut params = SearchParams::with_epsilon(epsilon);
    if let Some(w) = o.get("window") {
        params.window = Some(w.parse().map_err(|_| "--window: bad value".to_string())?);
    }
    params.cascade = !o.flag("no-cascade");
    let idx = open_index(&dir)?;
    let (_, report) = idx.explain(&query, &params).map_err(|e| e.to_string())?;
    if o.flag("json") {
        println!("{}", report.to_json());
    } else {
        println!("{report}");
    }
    Ok(())
}

fn cmd_mine(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let dir = PathBuf::from(o.require("index-dir")?);
    let len: u32 = o.parse_num("len", 8)?;
    let k: usize = o.parse_num("k", 5)?;
    let idx = open_index(&dir)?;
    if idx.tree.is_sparse() {
        return Err("motif mining needs a full index (rebuild without --sparse)".into());
    }
    // Mining materializes the suffix tree in memory; the ESA backend
    // has no tree file to materialize from.
    let Some(base) = idx.tree.as_tree() else {
        return Err(
            "motif mining needs the tree backend (rebuild with --backend tree)".to_string(),
        );
    };
    let mem = base.to_mem().map_err(|e| e.to_string())?;
    let motifs = warptree_suffix::top_motifs(&mem, len, k);
    println!("top {} motifs of length {len}:", motifs.len());
    for (rank, m) in motifs.iter().enumerate() {
        let exemplar = m.occurrences[0];
        let values = idx
            .store
            .get(exemplar.0)
            .subseq(exemplar.1, len)
            .iter()
            .map(|v| format!("{v:.2}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "  #{}: {} occurrences, e.g. {}[{}..] = [{}]",
            rank + 1,
            m.count,
            idx.store.display_name(exemplar.0),
            exemplar.1 + 1,
            values
        );
    }
    if let Some(longest) = warptree_suffix::longest_repeated(&mem, 2) {
        println!(
            "longest repeated shape: {} symbols, {} occurrences",
            longest.symbols.len(),
            longest.count
        );
    }
    Ok(())
}

fn cmd_forecast(args: &[String]) -> Result<(), String> {
    use warptree::core::predict::{forecast, Weighting};
    let o = Opts::parse(args)?;
    let dir = PathBuf::from(o.require("index-dir")?);
    let query = resolve_query(&o)?;
    let epsilon: f64 = o
        .require("epsilon")?
        .parse()
        .map_err(|_| "--epsilon: bad value".to_string())?;
    let horizon: usize = o.parse_num("horizon", 5)?;
    let idx = open_index(&dir)?;
    let mut params = SearchParams::with_epsilon(epsilon);
    if let Some(w) = o.get("window") {
        params.window = Some(w.parse().map_err(|_| "--window: bad value".to_string())?);
    }
    let (out, _) = idx
        .query(&QueryRequest::threshold_params(&query, params))
        .map_err(|e| e.to_string())?;
    let episodes = out.into_answer_set().non_overlapping();
    if episodes.is_empty() {
        return Err("no similar episodes found — raise --epsilon".into());
    }
    match forecast(
        &idx.store,
        &episodes,
        horizon,
        Weighting::InverseDistance { lambda: 0.5 },
    ) {
        None => Err("episodes have no continuations".into()),
        Some(f) => {
            let last = *query.last().expect("non-empty query");
            println!(
                "{} distinct episodes; forecast from last value {last:.2}:",
                episodes.len()
            );
            for step in 0..f.mean.len() {
                println!(
                    "  +{}: {:>8.2}  (range {:.2}..{:.2}, {} continuations)",
                    step + 1,
                    last + f.mean[step],
                    last + f.low[step],
                    last + f.high[step],
                    f.support[step]
                );
            }
            Ok(())
        }
    }
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use warptree::server::signal;
    // Accept the directory positionally (`warptree serve ./idx`) or as
    // `--index-dir ./idx`.
    let (dir, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (PathBuf::from(a), &args[1..]),
        _ => {
            let o = Opts::parse(args)?;
            (PathBuf::from(o.require("index-dir")?), args)
        }
    };
    let o = Opts::parse(rest)?;
    let mut config = ServerConfig {
        addr: o.get("addr").unwrap_or("127.0.0.1:7878").to_string(),
        ..ServerConfig::default()
    };
    config.workers = o.parse_num("workers", config.workers)?;
    config.queue_depth = o.parse_num("queue-depth", config.queue_depth)?;
    config.deadline = std::time::Duration::from_millis(o.parse_num("deadline-ms", 5000u64)?);
    config.reload_interval = std::time::Duration::from_millis(o.parse_num("reload-ms", 200u64)?);
    config.max_query_len = o.parse_num("max-query-len", config.max_query_len)?;
    config.cache_pages = o.parse_num("cache-pages", config.cache_pages)?;
    config.cache_nodes = config.cache_pages * 8;
    config.max_conns = o.parse_num("max-conns", config.max_conns)?;
    config.max_parallelism = o.parse_num("threads", config.max_parallelism)?;
    config.compact_threshold = o.parse_num("compact-threshold", config.compact_threshold)?;
    config.scrub_interval =
        std::time::Duration::from_millis(o.parse_num("scrub-interval-ms", 0u64)?);
    config.enable_debug_ops = o.flag("debug-ops");
    config.slow_ms = o.parse_num("slow-ms", config.slow_ms)?;
    config.trace_sample = o.parse_num("trace-sample", config.trace_sample)?;
    config.slowlog_capacity = o.parse_num("slowlog-capacity", config.slowlog_capacity)?;
    config.metrics_addr = o.get("metrics-addr").map(str::to_string);

    if !signal::install_handlers() {
        eprintln!(
            "warning: SIGINT/SIGTERM handlers unavailable; stop via the protocol `shutdown` op"
        );
    }
    let handle = Server::start(&dir, config.clone()).map_err(|e| e.to_string())?;
    // One parseable line so scripts can discover the bound port.
    println!("serving {} on {}", dir.display(), handle.addr());
    println!(
        "  workers {}, queue depth {}, max conns {}, deadline {:?}, reload poll {:?}, \
         per-request parallelism cap {}",
        config.workers,
        config.queue_depth,
        config.max_conns,
        config.deadline,
        config.reload_interval,
        config.max_parallelism
    );
    println!(
        "  slow-query threshold {} ms, trace sample {}, slowlog capacity {}",
        config.slow_ms,
        if config.trace_sample == 0 {
            "off".to_string()
        } else {
            format!("1-in-{}", config.trace_sample)
        },
        config.slowlog_capacity
    );
    if let Some(maddr) = handle.metrics_addr() {
        println!("  metrics exposition on http://{maddr}/metrics");
    }
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Park until SIGINT/SIGTERM or a protocol `shutdown` op, then drain.
    while !signal::shutdown_requested() && !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining in-flight requests…");
    handle.request_shutdown();
    handle.join();
    eprintln!("drained; bye");
    Ok(())
}

/// Greedy contiguous value-balanced partition: cut after the sequence
/// whose cumulative value count first reaches the running target, while
/// always leaving at least one sequence per remaining shard. Contiguity
/// is what makes the coordinator's id remap pure arithmetic.
fn partition_points(lens: &[u64], shards: usize) -> Vec<usize> {
    let total: u64 = lens.iter().sum();
    let mut cuts = Vec::with_capacity(shards);
    let mut start = 0usize;
    let mut consumed = 0u64;
    for s in 0..shards {
        let remaining_shards = shards - s;
        let max_end = lens.len() - (remaining_shards - 1);
        let target = consumed + (total - consumed) / remaining_shards as u64;
        let mut end = start + 1;
        consumed += lens[start];
        while end < max_end && consumed < target {
            consumed += lens[end];
            end += 1;
        }
        cuts.push(end);
        start = end;
    }
    cuts
}

fn cmd_shard_init(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let input = PathBuf::from(o.require("input")?);
    let out_dir = PathBuf::from(o.require("out-dir")?);
    let shards: usize = o.parse_num("shards", 2)?;
    let categories: usize = o.parse_num("categories", 40)?;
    let batch: usize = o.parse_num("batch", 64)?;
    let kind = if o.flag("sparse") {
        warptree_disk::TreeKind::Sparse
    } else {
        warptree_disk::TreeKind::Full
    };
    let backend = match o.get("backend").unwrap_or("tree") {
        "tree" => BackendKind::Tree,
        "esa" => BackendKind::Esa,
        other => return Err(format!("unknown --backend {other:?} (tree or esa)")),
    };
    let store = load_csv(&input).map_err(|e| e.to_string())?;
    if store.is_empty() {
        return Err("input contains no sequences".into());
    }
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if shards > store.len() {
        return Err(format!(
            "--shards {shards} exceeds the corpus's {} sequences",
            store.len()
        ));
    }
    let cat = match o.get("method").unwrap_or("me") {
        "me" => Categorization::MaxEntropy(categories),
        "el" => Categorization::EqualLength(categories),
        "exact" => Categorization::Exact,
        "kmeans" => Categorization::KMeans(categories),
        other => return Err(format!("unknown --method {other:?}")),
    };
    // ONE alphabet over the whole corpus, shared by every shard build.
    // Per-shard alphabets would categorize the same values differently
    // and shard answers would stop merging byte-identically with a
    // monolithic index.
    let alphabet = cat.alphabet(&store).map_err(|e| e.to_string())?;
    let lens: Vec<u64> = store.iter().map(|(_, s)| s.len() as u64).collect();
    let cuts = partition_points(&lens, shards);
    let t0 = std::time::Instant::now();
    let mut metas = Vec::with_capacity(shards);
    let mut start = 0usize;
    for (i, &end) in cuts.iter().enumerate() {
        let mut slice = warptree::core::sequence::SequenceStore::new();
        for id in start..end {
            let sid = warptree::core::sequence::SeqId(id as u32);
            let seq = store.get(sid).clone();
            match store.name(sid) {
                Some(n) => slice.push_named(seq, n),
                None => slice.push(seq),
            };
        }
        let dir_name = format!("shard-{i:04}");
        let shard_dir = out_dir.join(&dir_name);
        warptree_disk::build_dir_backend_with(
            warptree_disk::real_vfs(),
            &slice,
            &alphabet,
            kind,
            batch,
            1,
            None,
            backend,
            &shard_dir,
        )
        .map_err(|e| format!("building {dir_name}: {e}"))?;
        println!(
            "  {dir_name}: sequences [{start}, {end}) — {} values",
            slice.total_len()
        );
        metas.push(warptree_disk::ShardMeta {
            dir: dir_name,
            start_seq: start as u32,
            seq_count: (end - start) as u32,
            values: slice.total_len(),
        });
        start = end;
    }
    let manifest = warptree_disk::ShardManifest {
        generation: 1,
        shards: metas,
    };
    warptree_disk::write_shard_manifest(&out_dir, &manifest).map_err(|e| e.to_string())?;
    println!(
        "sharded {} sequences ({} values) into {shards} shard directories under {} in {:.2?}",
        store.len(),
        store.total_len(),
        out_dir.display(),
        t0.elapsed()
    );
    println!(
        "  serve each with `warptree serve {}/shard-NNNN`, then \
         `warptree shard-coordinator {} --shards ADDR,…`",
        out_dir.display(),
        out_dir.display()
    );
    Ok(())
}

fn cmd_shard_coordinator(args: &[String]) -> Result<(), String> {
    use warptree::coord::{CoordConfig, Coordinator};
    use warptree::server::signal;
    // Accept the sharding root positionally or as `--index-dir DIR`.
    let (dir, rest) = match args.first() {
        Some(a) if !a.starts_with("--") => (PathBuf::from(a), &args[1..]),
        _ => {
            let o = Opts::parse(args)?;
            (PathBuf::from(o.require("index-dir")?), args)
        }
    };
    let o = Opts::parse(rest)?;
    let shard_addrs: Vec<String> = o
        .require("shards")?
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(str::to_string)
        .collect();
    if shard_addrs.is_empty() {
        return Err("--shards needs at least one address".into());
    }
    let mut config = CoordConfig {
        addr: o.get("addr").unwrap_or("127.0.0.1:7979").to_string(),
        shard_addrs,
        ..CoordConfig::default()
    };
    config.workers = o.parse_num("workers", config.workers)?;
    config.deadline = std::time::Duration::from_millis(o.parse_num("deadline-ms", 5000u64)?);
    config.shard_timeout =
        std::time::Duration::from_millis(o.parse_num("shard-timeout-ms", 5000u64)?);
    config.max_conns = o.parse_num("max-conns", config.max_conns)?;
    config.health_interval =
        std::time::Duration::from_millis(o.parse_num("health-interval-ms", 500u64)?);
    config.slow_ms = o.parse_num("slow-ms", config.slow_ms)?;
    config.trace_sample = o.parse_num("trace-sample", config.trace_sample)?;
    config.slowlog_capacity = o.parse_num("slowlog-capacity", config.slowlog_capacity)?;

    if !signal::install_handlers() {
        eprintln!(
            "warning: SIGINT/SIGTERM handlers unavailable; stop via the protocol `shutdown` op"
        );
    }
    let shard_count = config.shard_addrs.len();
    let handle = Coordinator::start(&dir, config.clone()).map_err(|e| e.to_string())?;
    // One parseable line so scripts can discover the bound port.
    println!("coordinating {shard_count} shards on {}", handle.addr());
    for (i, addr) in config.shard_addrs.iter().enumerate() {
        println!("  shard {i}: {addr}");
    }
    println!(
        "  scatter lanes {}, deadline {:?}, per-shard timeout {:?}, max conns {}, \
         health poll {:?}",
        config.workers,
        config.deadline,
        config.shard_timeout,
        config.max_conns,
        config.health_interval
    );
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    // Park until SIGINT/SIGTERM or a protocol `shutdown` op, then drain.
    while !signal::shutdown_requested() && !handle.is_shutting_down() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining in-flight requests…");
    handle.request_shutdown();
    handle.join();
    eprintln!("drained; bye");
    Ok(())
}

/// `warptree slowlog --addr HOST:PORT` — dump a running server's
/// slow-query ring, newest first. `--json` prints the raw entries
/// array; `--traces` renders each captured span tree inline.
fn cmd_slowlog(args: &[String]) -> Result<(), String> {
    use warptree::server::json::Json;
    let o = Opts::parse(args)?;
    let addr = o.require("addr")?;
    let mut client = Client::connect(addr).map_err(|e| e.to_string())?;
    let resp = client.slowlog().map_err(|e| e.to_string())?;
    let entries = resp
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("malformed slowlog response")?;
    if o.flag("json") {
        // Raw passthrough of the server's entries array, one line, for
        // scripts — stdout stays machine-usable.
        let raw = client
            .request_raw("{\"op\":\"slowlog\",\"version\":4}")
            .map_err(|e| e.to_string())?;
        println!("{raw}");
        return Ok(());
    }
    if entries.is_empty() {
        println!("slow-query ring is empty");
        return Ok(());
    }
    println!("{} slow-query entries (newest first):", entries.len());
    for e in entries {
        let ms = |key: &str| e.get(key).and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6;
        println!(
            "  {:>10.3} ms  (queue {:>8.3} ms)  {}  gen {}  trace {}",
            ms("dur_ns"),
            ms("queue_ns"),
            e.get("op").and_then(Json::as_str).unwrap_or("?"),
            e.get("generation").and_then(Json::as_u64).unwrap_or(0),
            match e.get("trace_id").and_then(Json::as_str) {
                Some("") | None => "-",
                Some(id) => id,
            },
        );
        if o.flag("traces") {
            if let Some(spans) = e
                .get("trace")
                .and_then(|t| t.get("spans"))
                .and_then(Json::as_arr)
            {
                for s in spans {
                    println!(
                        "      {:>10.3} ms  {}",
                        s.get("dur_ns").and_then(Json::as_u64).unwrap_or(0) as f64 / 1e6,
                        s.get("name").and_then(Json::as_str).unwrap_or("?"),
                    );
                }
            }
        }
    }
    Ok(())
}

fn cmd_bench_client(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let addr = o.require("addr")?.to_string();
    let connections: usize = o.parse_num("connections", 8)?;
    let requests: usize = o.parse_num("requests", 240)?;
    let mode = match o.get("mode").unwrap_or("closed") {
        "closed" => LoopMode::Closed,
        "open" => LoopMode::Open {
            rate: o.parse_num("rate", 100.0)?,
        },
        other => return Err(format!("unknown --mode {other:?} (closed|open)")),
    };
    let epsilons = match o.get("epsilons") {
        None => warptree::server::bench::default_epsilons(),
        Some(text) => parse_query(text)?,
    };
    let window: Option<u32> = match o.get("window") {
        Some(w) => Some(w.parse().map_err(|_| "--window: bad value".to_string())?),
        None => None,
    };
    // Query pool: explicit `--query`, or drawn from a corpus CSV with
    // the paper's stratified workload (§7: mean length 20, 20/50/30
    // band mix).
    let queries: Vec<Vec<f64>> = match (o.get("query"), o.get("input")) {
        (Some(text), _) => vec![parse_query(text)?],
        (None, Some(input)) => {
            let store = load_csv(Path::new(input)).map_err(|e| e.to_string())?;
            if store.is_empty() {
                return Err("--input contains no sequences".into());
            }
            let cfg = QueryConfig {
                count: o.parse_num("queries", 32usize)?,
                seed: o.parse_num("seed", 1u64)?,
                ..Default::default()
            };
            QueryWorkload::draw(&store, &cfg)
                .queries()
                .iter()
                .map(|q| q.values.clone())
                .collect()
        }
        (None, None) => return Err("bench-client needs --query or --input".into()),
    };
    let config = BenchConfig {
        addr,
        connections,
        requests,
        mode,
        epsilons,
        window,
        queries,
    };
    let t0 = std::time::Instant::now();
    let report = warptree::server::bench::run(&config).map_err(|e| e.to_string())?;
    println!(
        "{} requests over {} connections ({}) in {:.2?}:",
        report.sent,
        report.connections,
        report.mode,
        t0.elapsed()
    );
    println!(
        "  ok {}, overloaded {}, deadline_exceeded {}, errors {} ({} connection failures)",
        report.ok, report.overloaded, report.deadline_exceeded, report.errors, report.conn_failures
    );
    println!(
        "  throughput {:.1} req/s; latency p50 {} µs, p95 {} µs, p99 {} µs, max {} µs",
        report.throughput, report.p50_us, report.p95_us, report.p99_us, report.max_us
    );
    println!(
        "  server split: queue wait p50 {} µs, p99 {} µs; service p50 {} µs, p99 {} µs",
        report.queue_wait_us[0],
        report.queue_wait_us[2],
        report.service_us[0],
        report.service_us[2]
    );
    if let Some(out) = o.get("out") {
        std::fs::write(out, report.to_json() + "\n").map_err(|e| e.to_string())?;
        println!("  wrote {out}");
    }
    Ok(())
}

fn cmd_scan(args: &[String]) -> Result<(), String> {
    let o = Opts::parse(args)?;
    let input = PathBuf::from(o.require("input")?);
    let query = resolve_query(&o)?;
    let epsilon: f64 = o
        .require("epsilon")?
        .parse()
        .map_err(|_| "--epsilon: bad value".to_string())?;
    let store = load_csv(&input).map_err(|e| e.to_string())?;
    let stats_fmt = stats_mode(&o)?;
    let params = SearchParams::with_epsilon(epsilon);
    let mut stats = SearchStats::default();
    let t0 = std::time::Instant::now();
    let answers = seq_scan(
        &store,
        &query,
        &params,
        SeqScanMode::EarlyAbandon,
        &mut stats,
    );
    println!(
        "{} answers within ε = {epsilon} in {:.2?} (exact scan, {} table \
         cells)",
        answers.len(),
        t0.elapsed(),
        stats.total_cells()
    );
    for m in answers.top_k(20) {
        println!("  {}  dist {:.4}", m.occ, m.dist);
    }
    if let Some(fmt) = stats_fmt {
        // The scan reports through the plain snapshot; bridge it into a
        // registry so the dump has the same shape as the indexed paths.
        let reg = MetricsRegistry::new();
        SearchMetrics::register(&reg).record(&stats);
        emit_stats(fmt, &reg);
    }
    Ok(())
}
