//! Search EXPLAIN reports: one metered query run, rendered as the
//! paper's filter-and-refine funnel.
//!
//! A report answers "where did the work go?" for a single similarity
//! search: how many stored suffixes the index holds, how much of the
//! tree the filter walked vs pruned under Theorem 1, how many candidates
//! each lower bound admitted (`D_tw-lb` for stored suffixes, `D_tw-lb2`
//! for the non-stored ones of a sparse tree), how many survived exact
//! post-processing, and — for disk-resident indexes — what the query
//! cost in page and node-cache traffic.

use warptree_core::error::CoreError;
use warptree_core::search::{AnswerSet, QueryRequest, SearchMetrics, SearchParams, SearchStats};
use warptree_core::sequence::Value;
use warptree_obs::json::num;
use warptree_obs::HistogramSnapshot;

use crate::{DiskIndexDir, Index};

/// Cache/page traffic attributable to one explained search (deltas over
/// the run, not totals since open).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExplainIo {
    /// Pages fetched from the file (page-cache misses).
    pub pages_read: u64,
    /// Page requests served from the buffer pool.
    pub page_cache_hits: u64,
    /// Decoded-node cache hits.
    pub node_cache_hits: u64,
    /// Decoded-node cache misses (records decoded from pages).
    pub node_cache_misses: u64,
}

impl ExplainIo {
    /// Page-cache hit rate in `[0, 1]`.
    pub fn page_hit_rate(&self) -> f64 {
        let total = self.pages_read + self.page_cache_hits;
        if total == 0 {
            0.0
        } else {
            self.page_cache_hits as f64 / total as f64
        }
    }
}

/// The full account of one similarity search: funnel counters, table
/// work, phase wall times, and (for disk indexes) I/O traffic.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// `"sparse"` (SST_C) or `"full"` (ST_C / ST).
    pub kind: &'static str,
    /// Which [`IndexBackend`](warptree_core::search::IndexBackend)
    /// served the query: `"tree"` or `"esa"`.
    pub backend: &'static str,
    /// Query length in elements.
    pub query_len: usize,
    /// Search threshold ε.
    pub epsilon: f64,
    /// Stored suffixes in the index — the funnel's entry width.
    pub suffixes: u64,
    /// All search counters of the run.
    pub stats: SearchStats,
    /// Filter-phase wall time (one sample).
    pub filter: HistogramSnapshot,
    /// Post-processing wall time (one sample).
    pub postprocess: HistogramSnapshot,
    /// Cache/page traffic of the run (disk indexes only).
    pub io: Option<ExplainIo>,
}

impl ExplainReport {
    /// Runs a checked search against an in-memory [`Index`] and explains
    /// it.
    pub fn for_index(
        index: &Index,
        query: &[Value],
        params: &SearchParams,
    ) -> Result<(AnswerSet, ExplainReport), CoreError> {
        let metrics = SearchMetrics::new();
        let answers = index
            .query_with(
                &QueryRequest::threshold_params(query, params.clone()),
                &metrics,
            )?
            .into_answer_set();
        let report = Self::assemble(
            index.tree().is_sparse(),
            warptree_core::search::IndexBackend::backend_kind(index.tree()).as_str(),
            query.len(),
            params.epsilon,
            warptree_core::search::IndexBackend::suffix_count(index.tree()),
            &metrics,
            None,
        );
        Ok((answers, report))
    }

    /// Runs a checked search against a disk-backed index directory and
    /// explains it, including the query's cache/page traffic. Multi-
    /// segment directories fan the query out and report traffic and
    /// suffix counts aggregated across the base tree and every tail
    /// segment.
    pub fn for_dir(
        dir: &DiskIndexDir,
        query: &[Value],
        params: &SearchParams,
    ) -> Result<(AnswerSet, ExplainReport), CoreError> {
        let io0 = Self::dir_io_totals(dir);
        let metrics = SearchMetrics::new();
        let answers = dir
            .query_with(
                &QueryRequest::threshold_params(query, params.clone()),
                &metrics,
            )?
            .into_answer_set();
        let io1 = Self::dir_io_totals(dir);
        let io = ExplainIo {
            pages_read: io1.pages_read - io0.pages_read,
            page_cache_hits: io1.page_cache_hits - io0.page_cache_hits,
            node_cache_hits: io1.node_cache_hits - io0.node_cache_hits,
            node_cache_misses: io1.node_cache_misses - io0.node_cache_misses,
        };
        use warptree_core::search::IndexBackend;
        let suffixes = IndexBackend::suffix_count(&dir.tree)
            + dir
                .segments
                .iter()
                .map(IndexBackend::suffix_count)
                .sum::<u64>();
        let report = Self::assemble(
            dir.tree.is_sparse(),
            dir.tree.kind().as_str(),
            query.len(),
            params.epsilon,
            suffixes,
            &metrics,
            Some(io),
        );
        Ok((answers, report))
    }

    /// Cumulative cache/page traffic of every tree in the directory.
    fn dir_io_totals(dir: &DiskIndexDir) -> ExplainIo {
        let mut total = ExplainIo::default();
        for tree in std::iter::once(&dir.tree).chain(dir.segments.iter()) {
            let io = tree.io_stats();
            let nc = tree.node_cache_stats();
            total.pages_read += io.pages_read;
            total.page_cache_hits += io.cache_hits;
            total.node_cache_hits += nc.0;
            total.node_cache_misses += nc.1;
        }
        total
    }

    fn assemble(
        sparse: bool,
        backend: &'static str,
        query_len: usize,
        epsilon: f64,
        suffixes: u64,
        metrics: &SearchMetrics,
        io: Option<ExplainIo>,
    ) -> ExplainReport {
        ExplainReport {
            kind: if sparse { "sparse" } else { "full" },
            backend,
            query_len,
            epsilon,
            suffixes,
            stats: metrics.snapshot(),
            filter: metrics.filter_ns.snapshot(),
            postprocess: metrics.postprocess_ns.snapshot(),
            io,
        }
    }

    /// Fraction of verified candidates that failed exact DTW —
    /// the paper's false-alarm rate.
    pub fn false_alarm_ratio(&self) -> f64 {
        if self.stats.postprocessed == 0 {
            0.0
        } else {
            self.stats.false_alarms as f64 / self.stats.postprocessed as f64
        }
    }

    /// Fraction of visited tree nodes whose subtrees Theorem 1 cut off.
    pub fn prune_ratio(&self) -> f64 {
        if self.stats.nodes_visited == 0 {
            0.0
        } else {
            self.stats.branches_pruned as f64 / self.stats.nodes_visited as f64
        }
    }

    /// Candidate lists emitted per stored suffix — the filter's
    /// selectivity against the index size.
    pub fn candidate_ratio(&self) -> f64 {
        if self.suffixes == 0 {
            0.0
        } else {
            self.stats.candidates as f64 / self.suffixes as f64
        }
    }

    /// Table rows an unshared (per-suffix) evaluation would have
    /// computed per row actually pushed — the paper's `R_d` sharing
    /// factor. `1.0` when the index cannot report subtree weights.
    pub fn sharing_factor(&self) -> f64 {
        if self.stats.rows_pushed == 0 || self.stats.rows_unshared == 0 {
            1.0
        } else {
            self.stats.rows_unshared as f64 / self.stats.rows_pushed as f64
        }
    }

    /// Serializes the report as one JSON object (stable keys; `io` is
    /// `null` for in-memory indexes).
    pub fn to_json(&self) -> String {
        let s = &self.stats;
        let io = match &self.io {
            None => "null".to_string(),
            Some(io) => format!(
                concat!(
                    "{{\"pages_read\":{},\"page_cache_hits\":{},",
                    "\"page_hit_rate\":{},\"node_cache_hits\":{},",
                    "\"node_cache_misses\":{}}}"
                ),
                io.pages_read,
                io.page_cache_hits,
                num(io.page_hit_rate()),
                io.node_cache_hits,
                io.node_cache_misses,
            ),
        };
        format!(
            concat!(
                "{{\"kind\":\"{}\",\"backend\":\"{}\",",
                "\"query_len\":{},\"epsilon\":{},",
                "\"funnel\":{{\"suffixes\":{},\"nodes_visited\":{},",
                "\"nodes_expanded\":{},\"branches_pruned\":{},",
                "\"stored_candidates\":{},\"lb2_candidates\":{},",
                "\"candidates\":{},\"postprocessed\":{},",
                "\"false_alarms\":{},\"answers\":{}}},",
                "\"cascade\":{{\"lb_keogh_kills\":{},",
                "\"lb_improved_kills\":{},\"abandon_kills\":{}}},",
                "\"ratios\":{{\"false_alarm\":{},\"pruned\":{},",
                "\"candidate\":{},\"sharing\":{}}},",
                "\"cells\":{{\"filter\":{},\"postprocess\":{},",
                "\"rows_pushed\":{},\"rows_unshared\":{}}},",
                "\"time_ms\":{{\"filter\":{},\"postprocess\":{}}},",
                "\"io\":{}}}"
            ),
            self.kind,
            self.backend,
            self.query_len,
            num(self.epsilon),
            self.suffixes,
            s.nodes_visited,
            s.nodes_expanded,
            s.branches_pruned,
            s.stored_candidates,
            s.lb2_candidates,
            s.candidates,
            s.postprocessed,
            s.false_alarms,
            s.answers,
            s.cascade_lb_keogh_kills,
            s.cascade_lb_improved_kills,
            s.cascade_abandon_kills,
            num(self.false_alarm_ratio()),
            num(self.prune_ratio()),
            num(self.candidate_ratio()),
            num(self.sharing_factor()),
            s.filter_cells,
            s.postprocess_cells,
            s.rows_pushed,
            s.rows_unshared,
            num(self.filter.sum as f64 / 1e6),
            num(self.postprocess.sum as f64 / 1e6),
            io,
        )
    }
}

impl std::fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.stats;
        writeln!(f, "query:  {} values, ε = {}", self.query_len, self.epsilon)?;
        writeln!(
            f,
            "index:  {} {}, {} stored suffixes",
            self.kind, self.backend, self.suffixes
        )?;
        writeln!(f, "filter funnel:")?;
        writeln!(
            f,
            "  nodes visited     {:>10}  ({} expanded, {} subtrees pruned, {:.1}%)",
            s.nodes_visited,
            s.nodes_expanded,
            s.branches_pruned,
            100.0 * self.prune_ratio()
        )?;
        writeln!(
            f,
            "  candidate lists   {:>10}  ({} stored-suffix, {} via D_tw-lb2)",
            s.candidates, s.stored_candidates, s.lb2_candidates
        )?;
        writeln!(f, "  exact DTW checks  {:>10}", s.postprocessed)?;
        let kills =
            s.cascade_lb_keogh_kills + s.cascade_lb_improved_kills + s.cascade_abandon_kills;
        if kills > 0 {
            let rate = |k: u64| {
                if s.postprocessed == 0 {
                    0.0
                } else {
                    100.0 * k as f64 / s.postprocessed as f64
                }
            };
            writeln!(
                f,
                "  cascade kills     {:>10}  (LB_Keogh {} = {:.1}%, LB_Improved {} = {:.1}%, abandon {} = {:.1}%)",
                kills,
                s.cascade_lb_keogh_kills,
                rate(s.cascade_lb_keogh_kills),
                s.cascade_lb_improved_kills,
                rate(s.cascade_lb_improved_kills),
                s.cascade_abandon_kills,
                rate(s.cascade_abandon_kills),
            )?;
        }
        writeln!(
            f,
            "  answers           {:>10}  ({} false alarms, {:.1}% rate)",
            s.answers,
            s.false_alarms,
            100.0 * self.false_alarm_ratio()
        )?;
        writeln!(f, "tables:")?;
        writeln!(f, "  filter cells      {:>10}", s.filter_cells)?;
        if s.rows_unshared > 0 {
            writeln!(
                f,
                "  rows pushed       {:>10}  (vs {} unshared — R_d sharing ×{:.2})",
                s.rows_pushed,
                s.rows_unshared,
                self.sharing_factor()
            )?;
        } else {
            writeln!(f, "  rows pushed       {:>10}", s.rows_pushed)?;
        }
        writeln!(f, "  postprocess cells {:>10}", s.postprocess_cells)?;
        writeln!(f, "time:")?;
        writeln!(
            f,
            "  filter       {:>10.3} ms",
            self.filter.sum as f64 / 1e6
        )?;
        write!(
            f,
            "  postprocess  {:>10.3} ms",
            self.postprocess.sum as f64 / 1e6
        )?;
        if let Some(io) = &self.io {
            writeln!(f)?;
            writeln!(f, "io:")?;
            writeln!(
                f,
                "  pages read {}, page-cache hits {} ({:.1}% hit rate)",
                io.pages_read,
                io.page_cache_hits,
                100.0 * io.page_hit_rate()
            )?;
            write!(
                f,
                "  node-cache hits {}, misses {}",
                io.node_cache_hits, io.node_cache_misses
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;
    use crate::Categorization;

    fn sample_store() -> SequenceStore {
        stock_corpus(&StockConfig {
            sequences: 12,
            mean_len: 40,
            ..Default::default()
        })
    }

    #[test]
    fn report_matches_checked_search() {
        let store = sample_store();
        let index = Index::sparse(&store, Categorization::MaxEntropy(8)).unwrap();
        let q = store.get(SeqId(2)).subseq(4, 8).to_vec();
        let params = SearchParams::with_epsilon(2.0);
        let (answers, report) = ExplainReport::for_index(&index, &q, &params).unwrap();
        let (out, stats) = index
            .query(&QueryRequest::threshold_params(&q, params.clone()))
            .unwrap();
        let checked = out.into_answer_set();
        assert_eq!(answers.occurrence_set(), checked.occurrence_set());
        assert_eq!(report.stats, stats);
        assert_eq!(report.kind, "sparse");
        assert!(report.io.is_none());
        assert_eq!(report.filter.count, 1);
        assert_eq!(report.postprocess.count, 1);
    }

    #[test]
    fn funnel_invariants_hold() {
        let store = sample_store();
        for sparse in [false, true] {
            let index = if sparse {
                Index::sparse(&store, Categorization::MaxEntropy(8)).unwrap()
            } else {
                Index::full(&store, Categorization::MaxEntropy(8)).unwrap()
            };
            let q = store.get(SeqId(0)).subseq(2, 6).to_vec();
            let params = SearchParams::with_epsilon(3.0);
            let (_, r) = ExplainReport::for_index(&index, &q, &params).unwrap();
            let s = &r.stats;
            assert_eq!(s.nodes_visited, s.nodes_expanded + s.branches_pruned);
            assert_eq!(s.candidates, s.stored_candidates + s.lb2_candidates);
            assert_eq!(s.postprocessed, s.answers + s.false_alarms);
            // Cascade kills are a subset of the false alarms.
            let kills =
                s.cascade_lb_keogh_kills + s.cascade_lb_improved_kills + s.cascade_abandon_kills;
            assert!(kills <= s.false_alarms);
            assert!(s.rows_unshared >= s.rows_pushed);
            if !sparse {
                assert_eq!(s.lb2_candidates, 0);
            }
        }
    }

    #[test]
    fn json_and_display_render() {
        let store = sample_store();
        let index = Index::full(&store, Categorization::EqualLength(6)).unwrap();
        let q = store.get(SeqId(1)).subseq(0, 5).to_vec();
        let (_, r) =
            ExplainReport::for_index(&index, &q, &SearchParams::with_epsilon(1.0)).unwrap();
        let j = r.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"funnel\""));
        assert!(j.contains("\"cascade\""));
        assert!(j.contains("\"lb_keogh_kills\""));
        assert!(j.contains("\"io\":null"));
        let text = r.to_string();
        assert!(text.contains("filter funnel"));
        assert!(text.contains("exact DTW checks"));
    }
}
