#![warn(missing_docs)]

//! # warptree
//!
//! Time-warping subsequence similarity search over sequence databases —
//! a production-quality Rust reproduction of
//!
//! > Park, Chu, Yoon, Hsu. *Efficient Searches for Similar Subsequences
//! > of Different Lengths in Sequence Databases.* ICDE 2000.
//!
//! The system answers queries of the form *"find every subsequence of
//! every database sequence whose time-warping (DTW) distance to Q is at
//! most ε"* — with **no false dismissals** — using a generalized suffix
//! tree over *categorized* (discretized) sequences, lower-bound distance
//! filtering, and exact post-processing. Sequences of different lengths
//! and sampling rates are matched naturally by the time-warping distance.
//!
//! ## Crate map
//!
//! * [`warptree_core`] — distances, categorization, lower bounds,
//!   the filter/search algorithms, sequential-scan baseline.
//! * [`warptree_suffix`] — in-memory generalized and sparse
//!   suffix trees (Ukkonen + naive builders).
//! * [`warptree_disk`] — paged on-disk trees, binary-merge
//!   incremental construction, corpus persistence.
//! * [`warptree_data`] — synthetic corpora and query workloads
//!   reproducing the paper's evaluation.
//!
//! ## Index selection cheat-sheet
//!
//! | Paper name | How to build | Exactness |
//! |---|---|---|
//! | `ST` | [`Index::exact`] (singleton alphabet) | filter is exact |
//! | `ST_C` | [`Index::full`] | lower bound + post-process |
//! | `SST_C` | [`Index::sparse`] | lower bound + post-process |
//!
//! ## Quick start
//!
//! ```
//! use warptree::prelude::*;
//!
//! // 1. A tiny "stock" database.
//! let store = SequenceStore::from_values(vec![
//!     vec![20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0],
//!     vec![20.0, 21.0, 20.0, 23.0],
//!     vec![55.0, 54.0, 57.0, 60.0],
//! ]);
//!
//! // 2. Build a sparse, max-entropy-categorized index (SST_C).
//! let index = Index::sparse(&store, Categorization::MaxEntropy(8)).unwrap();
//!
//! // 3. Search: subsequences within time-warping distance 1.0 of Q.
//! let query = [20.0, 21.0, 20.0, 23.0];
//! let (answers, stats) = index.search(&query, &SearchParams::with_epsilon(1.0));
//!
//! // The different-sampling-rate sequence matches with distance 0.
//! assert!(answers.matches().iter().any(|m| m.dist == 0.0));
//! assert!(stats.answers > 0);
//! ```

pub use warptree_coord as coord;
pub use warptree_core as core;
pub use warptree_data as data;
pub use warptree_disk as disk;
pub use warptree_obs as obs;
pub use warptree_server as server;
pub use warptree_suffix as suffix;

mod explain;

pub use explain::{ExplainIo, ExplainReport};

use std::sync::Arc;

use warptree_core::categorize::{Alphabet, CatStore};
use warptree_core::error::CoreError;
use warptree_core::search::{
    run_query, run_query_with, seq_scan, AnswerSet, KnnParams, Match, QueryOutput, QueryRequest,
    SearchMetrics, SearchParams, SearchStats, SegmentedIndex, SeqScanMode,
};
use warptree_core::sequence::{SequenceStore, Value};
use warptree_obs::MetricsRegistry;
use warptree_suffix::SuffixTree;

/// How element values are discretized (paper §5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Categorization {
    /// Equal-length categories ("EL") with the given count.
    EqualLength(usize),
    /// Maximum-entropy (equal-frequency) categories ("ME").
    MaxEntropy(usize),
    /// One category per distinct value — the exact, uncategorized `ST`.
    Exact,
    /// 1-D k-means categories.
    KMeans(usize),
}

impl Categorization {
    /// Builds the alphabet over a store.
    pub fn alphabet(&self, store: &SequenceStore) -> Result<Alphabet, CoreError> {
        match *self {
            Categorization::EqualLength(c) => Alphabet::equal_length(store, c),
            Categorization::MaxEntropy(c) => Alphabet::max_entropy(store, c),
            Categorization::Exact => Alphabet::singleton(store),
            Categorization::KMeans(c) => Alphabet::kmeans(store, c, 50),
        }
    }
}

/// A ready-to-query in-memory index: sequence store + alphabet +
/// suffix tree. This is the high-level entry point; the individual
/// pieces remain fully accessible for custom pipelines (disk-resident
/// trees, incremental builds, …).
pub struct Index {
    store: SequenceStore,
    alphabet: Alphabet,
    cat: Arc<CatStore>,
    tree: SuffixTree,
}

impl Index {
    /// Builds a full suffix-tree index (`ST_C`; `ST` when `cat` is
    /// [`Categorization::Exact`]).
    pub fn full(store: &SequenceStore, cat: Categorization) -> Result<Self, CoreError> {
        let alphabet = cat.alphabet(store)?;
        let encoded = Arc::new(alphabet.encode_store(store));
        let tree = warptree_suffix::build_full(encoded.clone());
        Ok(Self {
            store: store.clone(),
            alphabet,
            cat: encoded,
            tree,
        })
    }

    /// Builds a sparse suffix-tree index (`SST_C`, paper §6).
    pub fn sparse(store: &SequenceStore, cat: Categorization) -> Result<Self, CoreError> {
        let alphabet = cat.alphabet(store)?;
        let encoded = Arc::new(alphabet.encode_store(store));
        let tree = warptree_suffix::build_sparse(encoded.clone());
        Ok(Self {
            store: store.clone(),
            alphabet,
            cat: encoded,
            tree,
        })
    }

    /// Builds the exact (uncategorized) index `ST`.
    pub fn exact(store: &SequenceStore) -> Result<Self, CoreError> {
        Self::full(store, Categorization::Exact)
    }

    /// Runs a typed [`QueryRequest`] (threshold or k-NN) against this
    /// index — the one validated entry point every convenience method
    /// below routes through.
    pub fn query(&self, req: &QueryRequest) -> Result<(QueryOutput, SearchStats), CoreError> {
        run_query(&self.tree, &self.alphabet, &self.store, req)
    }

    /// [`query`](Self::query) accumulating counters and phase timings
    /// into caller-owned [`SearchMetrics`] (no stats snapshot).
    pub fn query_with(
        &self,
        req: &QueryRequest,
        metrics: &SearchMetrics,
    ) -> Result<QueryOutput, CoreError> {
        run_query_with(&self.tree, &self.alphabet, &self.store, req, metrics)
    }

    /// Runs a complete similarity search (filter + post-processing):
    /// every subsequence with `D_tw(query, ·) ≤ params.epsilon`.
    ///
    /// Panics on an invalid query; use [`query`](Self::query) to handle
    /// validation errors.
    pub fn search(&self, query: &[Value], params: &SearchParams) -> (AnswerSet, SearchStats) {
        let (out, stats) = self
            .query(&QueryRequest::threshold_params(query, params.clone()))
            .expect("invalid query");
        (out.into_answer_set(), stats)
    }

    /// [`search`](Self::search) accumulating counters and phase timings
    /// into caller-owned [`SearchMetrics`] (e.g. registered on a
    /// [`MetricsRegistry`] shared across many queries).
    pub fn search_with(
        &self,
        query: &[Value],
        params: &SearchParams,
        metrics: &SearchMetrics,
    ) -> AnswerSet {
        self.query_with(
            &QueryRequest::threshold_params(query, params.clone()),
            metrics,
        )
        .expect("invalid query")
        .into_answer_set()
    }

    /// Finds the `k` nearest subsequences to `query` (exact, via ε
    /// expansion over the same index).
    ///
    /// Panics on invalid parameters; use [`query`](Self::query) to
    /// handle validation errors.
    pub fn knn(&self, query: &[Value], params: &KnnParams) -> (Vec<Match>, SearchStats) {
        let (out, stats) = self
            .query(&QueryRequest::knn_params(query, params.clone()))
            .expect("invalid query");
        (out.into_ranked(), stats)
    }

    /// Runs many searches concurrently on `threads` worker threads (the
    /// index is immutable and shared). Results align with `queries`.
    pub fn batch_search(
        &self,
        queries: &[Vec<Value>],
        params: &SearchParams,
        threads: usize,
    ) -> Vec<AnswerSet> {
        // One bundle for the whole batch (not a fresh allocation per
        // query): batch totals land in a single place, matching how the
        // server's batch op reports through its shared registry bundle.
        let metrics = SearchMetrics::new();
        self.batch_search_with(queries, params, threads, &metrics)
    }

    /// [`batch_search`](Self::batch_search) accumulating every query's
    /// counters and phase timings into ONE caller-owned
    /// [`SearchMetrics`] bundle — its snapshot after the call reflects
    /// the whole batch.
    pub fn batch_search_with(
        &self,
        queries: &[Vec<Value>],
        params: &SearchParams,
        threads: usize,
        metrics: &SearchMetrics,
    ) -> Vec<AnswerSet> {
        let threads = threads.max(1).min(queries.len().max(1));
        let next = std::sync::atomic::AtomicUsize::new(0);
        let mut results: Vec<Option<AnswerSet>> = vec![None; queries.len()];
        let slots = std::sync::Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let answers = self.search_with(&queries[i], params, metrics);
                    slots.lock().unwrap()[i] = Some(answers);
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every query answered"))
            .collect()
    }

    /// Explains a match: the exact warping path aligning the query with
    /// the matched subsequence (paper Figure 1(b)'s element mapping).
    pub fn explain(
        &self,
        query: &[Value],
        m: &warptree_core::search::Match,
    ) -> warptree_core::dtw_path::Alignment {
        let sub = self.store.occurrence_values(m.occ);
        warptree_core::dtw_path::dtw_with_path(query, sub)
    }

    /// The exact baseline over the same store (paper §4.3). Identical
    /// answers, no index.
    pub fn seq_scan(&self, query: &[Value], params: &SearchParams) -> (AnswerSet, SearchStats) {
        let mut stats = SearchStats::default();
        let answers = seq_scan(&self.store, query, params, SeqScanMode::Full, &mut stats);
        (answers, stats)
    }

    /// The sequence database.
    pub fn store(&self) -> &SequenceStore {
        &self.store
    }

    /// The categorization alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The categorized database.
    pub fn cat(&self) -> &Arc<CatStore> {
        &self.cat
    }

    /// The underlying suffix tree.
    pub fn tree(&self) -> &SuffixTree {
        &self.tree
    }

    /// Persists this in-memory index as an index directory loadable
    /// with [`open_index_dir`]. The write is crash-safe: files are
    /// staged under temporary names and committed atomically by the
    /// directory's `MANIFEST`. Returns the tree file size in bytes.
    pub fn save_to_dir(&self, dir: &std::path::Path) -> Result<u64, Box<dyn std::error::Error>> {
        let vfs = warptree_disk::RealVfs;
        let current = match warptree_disk::resolve_dir_with(&vfs, dir) {
            Ok(resolved) => resolved.generation,
            Err(warptree_disk::DiskError::NotAnIndexDir(_)) => 0,
            Err(e) => return Err(e.into()),
        };
        let manifest = warptree_disk::commit_dir_with(
            &vfs,
            dir,
            current,
            |corpus_tmp| {
                warptree_disk::save_corpus_with(&vfs, &self.store, &self.alphabet, corpus_tmp)
                    .map(|_| ())
            },
            |index_tmp| warptree_disk::write_tree_with(&vfs, &self.tree, index_tmp).map(|_| ()),
        )?;
        Ok(manifest.index_len)
    }
}

/// A disk-backed index directory: the corpus file plus the base tree
/// and any tail segments (see [`warptree_disk::segment`]), as produced
/// by [`build_index_dir`], [`append_index_dir`] and the `warptree`
/// CLI.
pub struct DiskIndexDir {
    /// The sequence database, loaded from the corpus file.
    pub store: SequenceStore,
    /// The categorization alphabet.
    pub alphabet: Alphabet,
    /// The categorized corpus (shared with the trees).
    pub cat: Arc<CatStore>,
    /// The disk-resident base index, of whichever
    /// [`BackendKind`](warptree_core::search::BackendKind) the
    /// directory's manifest records.
    pub tree: warptree_disk::AnyIndex,
    /// Tail segments committed by online appends, in manifest order
    /// (empty for a fully compacted directory). Queries fan out across
    /// the base tree and every segment with results byte-identical to
    /// a monolithic index over the same corpus.
    pub segments: Vec<warptree_disk::AnyIndex>,
    /// Committed generation that was opened (0 = legacy manifest-less
    /// directory).
    pub generation: u64,
    /// What the recovery sweep cleaned while opening (crash leftovers).
    pub recovery: warptree_disk::RecoveryReport,
}

impl DiskIndexDir {
    /// Runs a typed [`QueryRequest`] against this directory, fanning
    /// out across the base tree and every tail segment.
    pub fn query(&self, req: &QueryRequest) -> Result<(QueryOutput, SearchStats), CoreError> {
        if self.segments.is_empty() {
            run_query(&self.tree, &self.alphabet, &self.store, req)
        } else {
            run_query(&self.fan_out(), &self.alphabet, &self.store, req)
        }
    }

    /// [`query`](Self::query) accumulating counters and phase timings
    /// into caller-owned [`SearchMetrics`] (no stats snapshot).
    pub fn query_with(
        &self,
        req: &QueryRequest,
        metrics: &SearchMetrics,
    ) -> Result<QueryOutput, CoreError> {
        if self.segments.is_empty() {
            run_query_with(&self.tree, &self.alphabet, &self.store, req, metrics)
        } else {
            run_query_with(&self.fan_out(), &self.alphabet, &self.store, req, metrics)
        }
    }

    fn fan_out(&self) -> SegmentedIndex<'_, warptree_disk::AnyIndex> {
        let mut trees: Vec<&warptree_disk::AnyIndex> = Vec::with_capacity(1 + self.segments.len());
        trees.push(&self.tree);
        trees.extend(self.segments.iter());
        SegmentedIndex::new(trees)
    }

    /// Total number of live trees: the base plus every tail segment.
    pub fn segment_count(&self) -> usize {
        1 + self.segments.len()
    }

    /// The index backend this directory's generation was committed
    /// under.
    pub fn backend(&self) -> warptree_core::search::BackendKind {
        self.tree.kind()
    }

    /// Runs a complete similarity search against the on-disk index.
    ///
    /// Panics on an invalid query; use [`query`](Self::query) to handle
    /// validation errors.
    pub fn search(&self, query: &[Value], params: &SearchParams) -> (AnswerSet, SearchStats) {
        let (out, stats) = self
            .query(&QueryRequest::threshold_params(query, params.clone()))
            .expect("invalid query");
        (out.into_answer_set(), stats)
    }

    /// [`search`](Self::search) accumulating counters and phase timings
    /// into caller-owned [`SearchMetrics`].
    pub fn search_with(
        &self,
        query: &[Value],
        params: &SearchParams,
        metrics: &SearchMetrics,
    ) -> AnswerSet {
        self.query_with(
            &QueryRequest::threshold_params(query, params.clone()),
            metrics,
        )
        .expect("invalid query")
        .into_answer_set()
    }

    /// Finds the `k` nearest subsequences.
    ///
    /// Panics on invalid parameters; use [`query`](Self::query) to
    /// handle validation errors.
    pub fn knn(&self, query: &[Value], params: &KnnParams) -> (Vec<Match>, SearchStats) {
        let (out, stats) = self
            .query(&QueryRequest::knn_params(query, params.clone()))
            .expect("invalid query");
        (out.into_ranked(), stats)
    }

    /// [`knn`](Self::knn) accumulating counters into caller-owned
    /// [`SearchMetrics`].
    pub fn knn_with(
        &self,
        query: &[Value],
        params: &KnnParams,
        metrics: &SearchMetrics,
    ) -> Vec<Match> {
        self.query_with(&QueryRequest::knn_params(query, params.clone()), metrics)
            .expect("invalid query")
            .into_ranked()
    }

    /// Explains one search: runs it and reports the filter funnel,
    /// table work, timings, and this query's cache/page traffic.
    pub fn explain(
        &self,
        query: &[Value],
        params: &SearchParams,
    ) -> Result<(AnswerSet, ExplainReport), CoreError> {
        ExplainReport::for_dir(self, query, params)
    }
}

/// Legacy (generation 0) file names inside an index directory. Newer
/// directories carry a `MANIFEST` naming generational files; use
/// [`resolve_index_dir`] to find the committed pair either way.
pub fn index_dir_paths(dir: &std::path::Path) -> (std::path::PathBuf, std::path::PathBuf) {
    (dir.join("corpus.wc"), dir.join("index.wt"))
}

/// Resolves the committed corpus and tree file paths of an index
/// directory (manifest generation, or the legacy fixed-name pair).
pub fn resolve_index_dir(
    dir: &std::path::Path,
) -> Result<(std::path::PathBuf, std::path::PathBuf), Box<dyn std::error::Error>> {
    let resolved = warptree_disk::resolve_dir_with(&warptree_disk::RealVfs, dir)?;
    Ok((resolved.corpus_path, resolved.index_path))
}

/// Builds a persistent index directory (corpus + incrementally merged
/// tree) for `store`. `sparse` selects `SST_C` vs `ST_C`; `batch` is the
/// number of sequences per in-memory partial tree. The build is
/// crash-safe: the directory flips atomically from its previous state
/// (or from empty) to the new index, and a failed or killed build leaves
/// any previous index untouched.
pub fn build_index_dir(
    store: &SequenceStore,
    cat: Categorization,
    sparse: bool,
    batch: usize,
    dir: &std::path::Path,
) -> Result<u64, Box<dyn std::error::Error>> {
    build_index_dir_backend(
        store,
        cat,
        sparse,
        batch,
        warptree_core::search::BackendKind::Tree,
        dir,
    )
}

/// [`build_index_dir`] with an explicit index backend: the suffix tree
/// (the default, incrementally merged batch by batch) or the enhanced
/// suffix array (`esa`), which answers every query byte-identically
/// through the same [`IndexBackend`](warptree_core::search::IndexBackend)
/// traversal while holding only three flat arrays resident. The chosen
/// backend is recorded in the directory's `MANIFEST` and every
/// subsequent open, append, scrub and compaction honors it.
pub fn build_index_dir_backend(
    store: &SequenceStore,
    cat: Categorization,
    sparse: bool,
    batch: usize,
    backend: warptree_core::search::BackendKind,
    dir: &std::path::Path,
) -> Result<u64, Box<dyn std::error::Error>> {
    build_index_dir_backend_metered(
        store,
        cat,
        sparse,
        batch,
        backend,
        dir,
        &MetricsRegistry::noop(),
    )
}

/// [`build_index_dir`] with full build observability: all file I/O is
/// metered as `disk.vfs.*` counters and the incremental builder
/// publishes its `build.*` counters and timing histograms, all on
/// `reg`. Pass a no-op registry to get [`build_index_dir`] behavior.
pub fn build_index_dir_metered(
    store: &SequenceStore,
    cat: Categorization,
    sparse: bool,
    batch: usize,
    dir: &std::path::Path,
    reg: &MetricsRegistry,
) -> Result<u64, Box<dyn std::error::Error>> {
    build_index_dir_backend_metered(
        store,
        cat,
        sparse,
        batch,
        warptree_core::search::BackendKind::Tree,
        dir,
        reg,
    )
}

/// [`build_index_dir_backend`] with full build observability (see
/// [`build_index_dir_metered`]).
pub fn build_index_dir_backend_metered(
    store: &SequenceStore,
    cat: Categorization,
    sparse: bool,
    batch: usize,
    backend: warptree_core::search::BackendKind,
    dir: &std::path::Path,
    reg: &MetricsRegistry,
) -> Result<u64, Box<dyn std::error::Error>> {
    let alphabet = cat.alphabet(store)?;
    let kind = if sparse {
        warptree_disk::TreeKind::Sparse
    } else {
        warptree_disk::TreeKind::Full
    };
    let vfs = warptree_disk::MeteredVfs::new(warptree_disk::real_vfs(), reg);
    let manifest = warptree_disk::build_dir_metered(
        vfs, store, &alphabet, kind, batch, 1, None, backend, dir, reg,
    )?;
    Ok(manifest.index_len)
}

/// Opens an index directory produced by [`build_index_dir`].
/// `cache_pages` sizes the tree's buffer pool.
///
/// Opening first runs crash recovery: the committed generation is
/// selected via the directory's `MANIFEST` (with a fallback to the
/// legacy `corpus.wc` + `index.wt` pair) and stale temporaries or
/// uncommitted files from an interrupted build/append are swept. The
/// sweep's findings are reported in [`DiskIndexDir::recovery`].
pub fn open_index_dir(
    dir: &std::path::Path,
    cache_pages: usize,
) -> Result<DiskIndexDir, Box<dyn std::error::Error>> {
    let vfs = warptree_disk::RealVfs;
    let (resolved, recovery) = warptree_disk::recover_dir_with(&vfs, dir)?;
    let backend = resolved.backend();
    let (store, alphabet, cat) = warptree_disk::load_corpus(&resolved.corpus_path)?;
    let tree = warptree_disk::AnyIndex::open_with(
        &vfs,
        &resolved.index_path,
        cat.clone(),
        backend,
        cache_pages,
        cache_pages * 8,
    )?;
    let mut segments = Vec::with_capacity(resolved.segment_paths.len());
    for (i, path) in resolved.segment_paths.iter().enumerate() {
        // Quarantined segments (tombstoned after a failed CRC check)
        // are excluded until a scrub heals them.
        if resolved
            .manifest
            .as_ref()
            .is_some_and(|m| m.segments[i].quarantined)
        {
            continue;
        }
        segments.push(warptree_disk::AnyIndex::open_with(
            &vfs,
            path,
            cat.clone(),
            backend,
            cache_pages,
            cache_pages * 8,
        )?);
    }
    Ok(DiskIndexDir {
        store,
        alphabet,
        cat,
        tree,
        segments,
        generation: resolved.generation,
        recovery,
    })
}

/// [`open_index_dir`] with I/O tracing: every filesystem operation is
/// metered as `disk.vfs.*` counters, and the tree's page and node
/// caches report as `disk.page_cache.*` / `disk.node_cache.*` — all
/// on `reg`, which outlives the returned index and can be snapshot at
/// any point.
pub fn open_index_dir_metered(
    dir: &std::path::Path,
    cache_pages: usize,
    reg: &MetricsRegistry,
) -> Result<DiskIndexDir, Box<dyn std::error::Error>> {
    let vfs = warptree_disk::MeteredVfs::new(warptree_disk::real_vfs(), reg);
    let (resolved, recovery) = warptree_disk::recover_dir_with(vfs.as_ref(), dir)?;
    let backend = resolved.backend();
    let (store, alphabet, cat) =
        warptree_disk::load_corpus_with(vfs.as_ref(), &resolved.corpus_path)?;
    let tree = warptree_disk::AnyIndex::open_with(
        vfs.as_ref(),
        &resolved.index_path,
        cat.clone(),
        backend,
        cache_pages,
        cache_pages * 8,
    )?;
    tree.instrument(reg);
    let mut segments = Vec::with_capacity(resolved.segment_paths.len());
    for (i, path) in resolved.segment_paths.iter().enumerate() {
        if resolved
            .manifest
            .as_ref()
            .is_some_and(|m| m.segments[i].quarantined)
        {
            continue;
        }
        segments.push(warptree_disk::AnyIndex::open_with(
            vfs.as_ref(),
            path,
            cat.clone(),
            backend,
            cache_pages,
            cache_pages * 8,
        )?);
    }
    Ok(DiskIndexDir {
        store,
        alphabet,
        cat,
        tree,
        segments,
        generation: resolved.generation,
        recovery,
    })
}

/// Appends `new` to an index directory as a tail segment — O(new data)
/// work, no rewrite of the existing trees. Queries over the reopened
/// directory fan out across all segments with results byte-identical to
/// a monolithic rebuild; run [`compact_index_dir`] (or `warptree
/// compact`) periodically to fold segments back together. Returns the
/// number of live trees (base + tails) after the append.
pub fn append_index_dir(
    dir: &std::path::Path,
    new: &SequenceStore,
) -> Result<usize, Box<dyn std::error::Error>> {
    let manifest = warptree_disk::append_segment(dir, new)?;
    Ok(1 + manifest.segments.len())
}

/// Fully compacts an index directory: repeatedly binary-merges the
/// cheapest adjacent pair of segments (paper §4.1) until a single tree
/// remains, each step committed as its own crash-safe generation.
/// Returns the number of merge steps performed.
pub fn compact_index_dir(dir: &std::path::Path) -> Result<u64, Box<dyn std::error::Error>> {
    let (runs, _) =
        warptree_disk::compact_all_with(&warptree_disk::RealVfs, dir, &MetricsRegistry::noop())?;
    Ok(runs)
}

/// Re-exports of the types most programs need.
pub mod prelude {
    pub use crate::{
        append_index_dir, build_index_dir, build_index_dir_backend,
        build_index_dir_backend_metered, build_index_dir_metered, compact_index_dir,
        open_index_dir, open_index_dir_metered, resolve_index_dir, Categorization, DiskIndexDir,
        ExplainIo, ExplainReport, Index,
    };
    pub use warptree_core::search::BackendKind;
    pub use warptree_core::cluster::{cluster_matches, Cluster};
    pub use warptree_core::predict::{forecast, Forecast, Weighting};
    pub use warptree_core::prelude::*;
    pub use warptree_data::{
        artificial_corpus, stock_corpus, ArtificialConfig, QueryConfig, QueryWorkload, StockConfig,
    };
    pub use warptree_disk::{DiskTree, IncrementalBuilder, TreeKind};
    pub use warptree_obs::{MetricsRegistry, MetricsSnapshot};
    pub use warptree_server::{BenchConfig, Client, LoopMode, Server, ServerConfig, ServerHandle};
    pub use warptree_suffix::{build_full, build_sparse, SuffixTree};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn index_types_are_shareable_across_threads() {
        // The serving stack hands `Index` / `DiskIndexDir` references to
        // worker threads; state the contract at compile time.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<crate::Index>();
        assert_send_sync::<crate::DiskIndexDir>();
        assert_send_sync::<MetricsRegistry>();
        assert_send_sync::<SearchMetrics>();
    }

    #[test]
    fn batch_search_shares_one_metrics_bundle() {
        let store = stock_corpus(&StockConfig {
            sequences: 8,
            mean_len: 30,
            ..Default::default()
        });
        let index = Index::sparse(&store, Categorization::MaxEntropy(8)).unwrap();
        let queries: Vec<Vec<f64>> = (0..4)
            .map(|i| store.get(SeqId(i)).subseq(0, 6).to_vec())
            .collect();
        let params = SearchParams::with_epsilon(3.0);
        let metrics = SearchMetrics::new();
        let batch = index.batch_search_with(&queries, &params, 2, &metrics);
        // The single bundle accumulated every query: its totals equal
        // the sum of per-query runs.
        let mut expected = SearchStats::default();
        for q in &queries {
            let (_, s) = index.search(q, &params);
            expected.merge(&s);
        }
        assert_eq!(metrics.snapshot(), expected);
        assert_eq!(batch.len(), queries.len());
    }

    #[test]
    fn knn_and_batch_search() {
        let store = stock_corpus(&StockConfig {
            sequences: 20,
            mean_len: 50,
            ..Default::default()
        });
        let index = Index::sparse(&store, Categorization::MaxEntropy(10)).unwrap();
        let q = store.get(SeqId(3)).subseq(5, 10).to_vec();
        let (top, _) = index.knn(&q, &KnnParams::new(5));
        assert_eq!(top.len(), 5);
        assert_eq!(top[0].dist, 0.0); // the query itself is in the store
        for w in top.windows(2) {
            assert!(w[0].dist <= w[1].dist);
        }

        let queries: Vec<Vec<f64>> = (0..6)
            .map(|i| store.get(SeqId(i)).subseq(0, 8).to_vec())
            .collect();
        let params = SearchParams::with_epsilon(5.0);
        let parallel = index.batch_search(&queries, &params, 4);
        for (q, got) in queries.iter().zip(&parallel) {
            let (seq, _) = index.search(q, &params);
            assert_eq!(got.occurrence_set(), seq.occurrence_set());
        }
    }

    #[test]
    fn explain_returns_consistent_alignment() {
        let store = SequenceStore::from_values(vec![vec![1.0, 1.0, 5.0, 5.0, 9.0]]);
        let index = Index::exact(&store).unwrap();
        let q = [1.0, 5.0, 9.0];
        let (answers, _) = index.search(&q, &SearchParams::with_epsilon(0.0));
        let m = answers
            .matches()
            .iter()
            .find(|m| m.occ.len == 5)
            .expect("whole-sequence match");
        let al = index.explain(&q, m);
        assert_eq!(al.dist, m.dist);
        assert_eq!(al.path.first(), Some(&(0, 0)));
        assert_eq!(al.path.last(), Some(&(2, 4)));
    }

    #[test]
    fn save_to_dir_then_open() {
        let dir = std::env::temp_dir().join(format!("warptree-facade-save-{}", std::process::id()));
        let store = stock_corpus(&StockConfig {
            sequences: 10,
            mean_len: 30,
            ..Default::default()
        });
        let index = Index::sparse(&store, Categorization::EqualLength(6)).unwrap();
        index.save_to_dir(&dir).unwrap();
        let opened = open_index_dir(&dir, 32).unwrap();
        let q = store.get(SeqId(1)).subseq(2, 5).to_vec();
        let params = SearchParams::with_epsilon(1.5);
        let (a, _) = index.search(&q, &params);
        let (b, _) = opened.search(&q, &params);
        assert_eq!(a.occurrence_set(), b.occurrence_set());
        // Names survive the round trip.
        assert_eq!(opened.store.name(SeqId(0)), store.name(SeqId(0)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("warptree-facade-dir-{}", std::process::id()));
        let store = stock_corpus(&StockConfig {
            sequences: 15,
            mean_len: 40,
            ..Default::default()
        });
        build_index_dir(&store, Categorization::MaxEntropy(8), true, 4, &dir).unwrap();
        let opened = open_index_dir(&dir, 64).unwrap();
        assert_eq!(opened.store.len(), store.len());
        let q = store.get(SeqId(2)).subseq(3, 6).to_vec();
        let params = SearchParams::with_epsilon(2.0);
        let (disk_answers, _) = opened.search(&q, &params);
        let mem = Index::sparse(&store, Categorization::MaxEntropy(8)).unwrap();
        let (mem_answers, _) = mem.search(&q, &params);
        assert_eq!(disk_answers.occurrence_set(), mem_answers.occurrence_set());
        let (top, _) = opened.knn(&q, &KnnParams::new(2));
        assert_eq!(top.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn index_variants_answer_identically() {
        let store = SequenceStore::from_values(vec![
            vec![10.0, 11.0, 12.0, 11.0, 10.0],
            vec![12.0, 12.0, 12.0, 30.0],
        ]);
        let q = [11.0, 12.0];
        let params = SearchParams::with_epsilon(1.0);
        let exact = Index::exact(&store).unwrap();
        let full = Index::full(&store, Categorization::EqualLength(3)).unwrap();
        let sparse = Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap();
        let (base, _) = exact.seq_scan(&q, &params);
        for idx in [&exact, &full, &sparse] {
            let (ans, _) = idx.search(&q, &params);
            assert_eq!(ans.occurrence_set(), base.occurrence_set());
        }
    }
}
