//! Disk-resident trees must answer exactly like their in-memory
//! counterparts (and therefore like `SeqScan`), whether written directly
//! or built by incremental binary merging.

use proptest::prelude::*;
use std::sync::Arc;
use warptree::prelude::*;
use warptree_disk::{
    load_corpus, merge_trees, save_corpus, write_tree, DiskTree, IncrementalBuilder, TreeKind,
};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-it-{}-{}", std::process::id(), tag));
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn db_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..14),
        1..6,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// write → open → search equals the in-memory search (full + sparse).
    #[test]
    fn disk_tree_searches_equal_memory(
        db in db_strategy(),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        case in 0u64..1_000_000,
    ) {
        let dir = tmpdir(&format!("sea-{case}"));
        let store = SequenceStore::from_values(db);
        let params = SearchParams::with_epsilon(1.5);
        for (tag, sparse) in [("full", false), ("sparse", true)] {
            let alphabet = Alphabet::max_entropy(&store, 3).unwrap();
            let cat = Arc::new(alphabet.encode_store(&store));
            let mem = if sparse {
                build_sparse(cat.clone())
            } else {
                build_full(cat.clone())
            };
            let path = dir.join(format!("{tag}.wt"));
            write_tree(&mem, &path).unwrap();
            let disk = DiskTree::open(&path, cat, 8, 32).unwrap();
            let req = QueryRequest::threshold_params(&q, params.clone());
            let mem_ans = run_query(&mem, &alphabet, &store, &req)
                .unwrap()
                .0
                .into_answer_set();
            let disk_ans = run_query(&disk, &alphabet, &store, &req)
                .unwrap()
                .0
                .into_answer_set();
            prop_assert_eq!(
                mem_ans.occurrence_set(),
                disk_ans.occurrence_set(),
                "disk/{} diverged",
                tag
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Incremental (batched, merged) construction equals direct
    /// construction, node for node.
    #[test]
    fn incremental_build_equals_direct(
        db in db_strategy(),
        batch in 1usize..4,
        case in 0u64..1_000_000,
    ) {
        let dir = tmpdir(&format!("incr-{case}"));
        let store = SequenceStore::from_values(db);
        let alphabet = Alphabet::equal_length(&store, 2).unwrap();
        let cat = Arc::new(alphabet.encode_store(&store));
        for (kind, sparse) in
            [(TreeKind::Full, false), (TreeKind::Sparse, true)]
        {
            let out = dir.join(format!("incr-{sparse}.wt"));
            IncrementalBuilder::new(cat.clone(), kind, batch, dir.clone())
                .build(&out)
                .unwrap();
            let disk = DiskTree::open(&out, cat.clone(), 8, 32).unwrap();
            let direct = if sparse {
                build_sparse(cat.clone())
            } else {
                build_full(cat.clone())
            };
            prop_assert_eq!(
                disk.to_mem().unwrap().canonical(),
                direct.canonical()
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A straight-line scenario exercising the full disk pipeline: corpus
/// persistence, two-way merge, reopening, searching.
#[test]
fn full_disk_pipeline() {
    let dir = tmpdir("pipeline");
    let store = stock_corpus(&StockConfig {
        sequences: 24,
        mean_len: 60,
        ..Default::default()
    });
    let alphabet = Alphabet::max_entropy(&store, 10).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));

    // Persist and reload the corpus.
    let corpus_path = dir.join("corpus.wc");
    save_corpus(&store, &alphabet, &corpus_path).unwrap();
    let (store2, alphabet2, cat2) = load_corpus(&corpus_path).unwrap();
    assert_eq!(store2.len(), store.len());
    assert_eq!(cat2.seqs(), cat.seqs());

    // Build two halves and merge.
    let t1 = warptree_suffix::build_full_range(cat.clone(), 0..12);
    let t2 = warptree_suffix::build_full_range(cat.clone(), 12..24);
    let (p1, p2, pm) = (dir.join("h1.wt"), dir.join("h2.wt"), dir.join("merged.wt"));
    write_tree(&t1, &p1).unwrap();
    write_tree(&t2, &p2).unwrap();
    let d1 = DiskTree::open(&p1, cat.clone(), 16, 64).unwrap();
    let d2 = DiskTree::open(&p2, cat.clone(), 16, 64).unwrap();
    merge_trees(&d1, &d2, &cat, &pm).unwrap();
    let merged = DiskTree::open(&pm, cat2.clone(), 32, 256).unwrap();

    // Search through the merged on-disk index using the reloaded corpus.
    let queries = QueryWorkload::draw(
        &store2,
        &QueryConfig {
            count: 5,
            mean_len: 8,
            ..Default::default()
        },
    );
    let params = SearchParams::with_epsilon(3.0);
    for q in queries.queries() {
        let (out, stats) = run_query(
            &merged,
            &alphabet2,
            &store2,
            &QueryRequest::threshold_params(&q.values, params.clone()),
        )
        .unwrap();
        let disk_ans = out.into_answer_set();
        let mut scan_stats = SearchStats::default();
        let scan = seq_scan(
            &store2,
            &q.values,
            &params,
            SeqScanMode::Full,
            &mut scan_stats,
        );
        assert_eq!(disk_ans.occurrence_set(), scan.occurrence_set());
        // The index must do less table work than the scan.
        assert!(stats.filter_cells <= scan_stats.filter_cells);
    }
    // The buffer pool actually served repeated reads.
    assert!(merged.io_stats().cache_hits > 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
