//! The multivariate extension end to end: grid-encoded sequences are
//! indexed by the *same* suffix trees, and the multivariate search must
//! equal the multivariate scan exactly — the paper's §8 claim that "the
//! same index construction and query processing techniques are applied".

use proptest::prelude::*;
use std::sync::Arc;
use warptree::core::multivariate::{
    mv_dtw, mv_seq_scan, mv_sim_search, GridAlphabet, MvSequence, MvStore,
};
use warptree::prelude::*;
use warptree_suffix::{build_full, build_sparse};

fn mv_db_strategy() -> impl Strategy<Value = (usize, Vec<Vec<f64>>)> {
    (1usize..3).prop_flat_map(|dims| {
        (
            Just(dims),
            prop::collection::vec(
                prop::collection::vec((0i32..6).prop_map(|v| v as f64), dims..=12 * dims)
                    .prop_map(move |mut v| {
                        v.truncate(v.len() / dims * dims);
                        v
                    })
                    .prop_filter("non-empty", |v| !v.is_empty()),
                1..4,
            ),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full and sparse multivariate index searches equal the scan.
    #[test]
    fn mv_index_equals_mv_scan(
        (dims, db) in mv_db_strategy(),
        qdata in prop::collection::vec((0i32..6).prop_map(|v| v as f64), 1..6),
        eps_i in 0u32..6,
    ) {
        let mut qdata = qdata;
        qdata.truncate((qdata.len() / dims).max(1) * dims);
        while qdata.len() < dims {
            qdata.push(0.0);
        }
        let eps = eps_i as f64 * 0.5;
        let mut store = MvStore::new();
        for d in db {
            store.push(MvSequence::new(dims, d));
        }
        let query = MvSequence::new(dims, qdata);
        let grid = GridAlphabet::equal_length(store.seqs(), 2).unwrap();
        let cat = Arc::new(store.encode(&grid));
        let params = SearchParams::with_epsilon(eps);

        let mut scan_stats = SearchStats::default();
        let expected = mv_seq_scan(&store, &query, &params, &mut scan_stats);

        for tree in [build_full(cat.clone()), build_sparse(cat.clone())] {
            let (got, _) =
                mv_sim_search(&tree, &grid, &store, &query, &params);
            prop_assert_eq!(
                got.occurrence_set(),
                expected.occurrence_set(),
                "sparse={}",
                tree.is_sparse()
            );
            // Distances are the exact multivariate DTW.
            for m in got.matches() {
                let s = store.get(m.occ.seq);
                let sub = MvSequence::new(
                    dims,
                    (m.occ.start as usize
                        ..(m.occ.start + m.occ.len) as usize)
                        .flat_map(|i| s.point(i).to_vec())
                        .collect(),
                );
                prop_assert!((m.dist - mv_dtw(&query, &sub)).abs() < 1e-9);
            }
        }
    }
}

/// A deterministic 2-D scenario: trajectories on a plane; the search
/// finds a warped occurrence of a path shape.
#[test]
fn trajectory_search_2d() {
    // A square-ish path walked at varying speed in sequence 0.
    let mut store = MvStore::new();
    store.push(MvSequence::new(
        2,
        vec![
            0.0, 0.0, 0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 2.0, 1.0, 2.0, 2.0, 2.0, 2.0, 1.0, 2.0, 0.0,
            2.0,
        ],
    ));
    // A decoy far away.
    store.push(MvSequence::new(2, vec![9.0, 9.0, 8.0, 9.0, 9.0, 8.0]));
    // Query: the same path at "normal" speed.
    let query = MvSequence::new(
        2,
        vec![
            0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 2.0, 1.0, 2.0, 2.0, 1.0, 2.0, 0.0, 2.0,
        ],
    );
    let grid = GridAlphabet::equal_length(store.seqs(), 4).unwrap();
    let cat = Arc::new(store.encode(&grid));
    let tree = build_sparse(cat);
    let params = SearchParams::with_epsilon(0.0);
    let (answers, _) = mv_sim_search(&tree, &grid, &store, &query, &params);
    // The whole of sequence 0 warps onto the query exactly.
    assert!(answers
        .matches()
        .iter()
        .any(|m| m.occ.seq == SeqId(0) && m.occ.len == 9 && m.dist == 0.0));
    // Nothing in the decoy matches at ε = 0.
    assert!(answers.matches().iter().all(|m| m.occ.seq == SeqId(0)));
}
