//! Recall on planted motifs: patterns time-stretched up to ±50 % and
//! noised must all be recovered by the windowed search — a functional
//! demonstration of the paper's "different lengths / different sampling
//! rates" claim with known ground truth.

use warptree::core::dtw::dtw;
use warptree::prelude::*;
use warptree_data::{planted_corpus, resample, PlantConfig};

#[test]
fn all_planted_motifs_recovered() {
    let cfg = PlantConfig {
        sequences: 8,
        len: 260,
        plants: 16,
        stretch: (0.6, 1.6),
        noise_std: 0.05,
        background_std: 2.5,
        seed: 0x12EC,
        ..Default::default()
    };
    let (store, truth) = planted_corpus(&cfg);
    assert!(truth.len() >= 12, "enough plants to be meaningful");

    let index = Index::sparse(&store, Categorization::MaxEntropy(32)).unwrap();
    let query = resample(&cfg.pattern, cfg.pattern.len());

    // ε calibrated from the worst planted distance (ground truth in
    // hand, we can assert *exact* recall rather than a heuristic one).
    let worst = truth
        .iter()
        .map(|occ| dtw(&query, store.occurrence_values(*occ)))
        .fold(0.0f64, f64::max);
    let w = (cfg.pattern.len() as f64 * 0.8) as u32; // covers ±60 % stretch
    let params = SearchParams::with_epsilon(worst + 1e-9).windowed(w);
    let (answers, stats) = index.search(&query, &params);

    // Recall: every plant's exact occurrence is in the answer set.
    let occs = answers.occurrence_set();
    for t in &truth {
        assert!(
            occs.binary_search(t).is_ok(),
            "planted occurrence {t} missing (ε = {worst:.2})"
        );
    }
    // And the search agrees with the exact scan, as always.
    let (scan, _) = index.seq_scan(&query, &params);
    assert_eq!(occs, scan.occurrence_set());
    assert!(stats.answers as usize >= truth.len());

    // The non-overlapping view condenses to about one region per plant
    // (background collisions may add a few).
    let regions = answers.non_overlapping();
    assert!(regions.len() >= truth.len() / 2);
}

#[test]
fn stretched_plants_found_at_their_own_lengths() {
    // Verify the matches actually span different lengths (the title's
    // "different lengths"): search with a window and check that each
    // plant is matched at (close to) its planted length.
    let cfg = PlantConfig {
        sequences: 5,
        len: 220,
        plants: 10,
        stretch: (0.7, 1.4),
        noise_std: 0.02,
        seed: 0x5EC2,
        ..Default::default()
    };
    let (store, truth) = planted_corpus(&cfg);
    let index = Index::sparse(&store, Categorization::MaxEntropy(24)).unwrap();
    let query = cfg.pattern.clone();
    let worst = truth
        .iter()
        .map(|occ| dtw(&query, store.occurrence_values(*occ)))
        .fold(0.0f64, f64::max);
    let params = SearchParams::with_epsilon(worst + 1e-9).windowed((cfg.pattern.len() / 2) as u32);
    let (answers, _) = index.search(&query, &params);
    let lens: std::collections::HashSet<u32> = truth
        .iter()
        .filter(|t| answers.occurrence_set().binary_search(t).is_ok())
        .map(|t| t.len)
        .collect();
    assert!(
        lens.len() >= 3,
        "matched plants should span several distinct lengths, got {lens:?}"
    );
}
