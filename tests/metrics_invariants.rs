//! Integration contract of the observability layer: the `run_query`
//! counters obey their accounting identities on *disk-backed* indexes
//! (full and sparse), are bit-identical across identical runs, agree
//! with the `EXPLAIN` report, and surface under their registry names
//! next to the I/O trace.

use warptree::prelude::*;

fn corpus() -> SequenceStore {
    stock_corpus(&StockConfig {
        sequences: 30,
        mean_len: 60,
        seed: 0xBEEF,
        ..Default::default()
    })
}

fn query(store: &SequenceStore) -> Vec<f64> {
    QueryWorkload::draw(
        store,
        &QueryConfig {
            count: 1,
            mean_len: 8,
            len_jitter: 0,
            noise_std: 0.5,
            ..Default::default()
        },
    )
    .queries()[0]
        .values
        .clone()
}

fn dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("warptree-minv-{}-{tag}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// The filter-funnel identities hold on both on-disk tree kinds.
#[test]
fn funnel_invariants_on_disk_dirs() {
    let store = corpus();
    let q = query(&store);
    let params = SearchParams::with_epsilon(6.0);
    for sparse in [false, true] {
        let d = dir(if sparse { "sp" } else { "full" });
        build_index_dir(&store, Categorization::MaxEntropy(12), sparse, 8, &d).unwrap();
        let idx = open_index_dir(&d, 32).unwrap();
        let metrics = SearchMetrics::new();
        let answers = idx.search_with(&q, &params, &metrics);
        let s = metrics.snapshot();

        // Every visited node is either expanded or pruned (Theorem 1).
        assert_eq!(s.nodes_visited, s.nodes_expanded + s.branches_pruned);
        // Candidates come from exactly two generators (Definitions 3/4),
        // and only the sparse tree uses the second.
        assert_eq!(s.candidates, s.stored_candidates + s.lb2_candidates);
        if !sparse {
            assert_eq!(s.lb2_candidates, 0, "full tree has no non-stored suffixes");
        } else {
            assert!(s.lb2_candidates > 0, "sparse tree must infer suffixes");
        }
        // No false dismissals: the filter emits at least every answer.
        assert!(s.candidates >= s.answers);
        assert_eq!(s.answers, answers.len() as u64);
        assert_eq!(s.postprocessed, s.answers + s.false_alarms);
        // Table sharing only saves work (R_d >= 1).
        assert!(
            s.rows_unshared >= s.rows_pushed,
            "sharing cannot push more rows than per-suffix scans: {} < {}",
            s.rows_unshared,
            s.rows_pushed
        );
        std::fs::remove_dir_all(&d).ok();
    }
}

/// Two identical runs produce identical counter snapshots — the stats
/// are functions of (index, query, params), never of timing.
#[test]
fn counters_identical_across_identical_runs() {
    let store = corpus();
    let q = query(&store);
    let params = SearchParams::with_epsilon(6.0);
    let d = dir("det");
    build_index_dir(&store, Categorization::MaxEntropy(12), true, 8, &d).unwrap();
    let idx = open_index_dir(&d, 32).unwrap();
    let (m1, m2) = (SearchMetrics::new(), SearchMetrics::new());
    let a1 = idx.search_with(&q, &params, &m1);
    let a2 = idx.search_with(&q, &params, &m2);
    assert_eq!(a1.occurrence_set(), a2.occurrence_set());
    assert_eq!(m1.snapshot(), m2.snapshot());
    std::fs::remove_dir_all(&d).ok();
}

/// The EXPLAIN report carries exactly the stats of the checked search
/// it ran, and its I/O profile is present on disk indexes.
#[test]
fn explain_report_agrees_with_checked_search() {
    let store = corpus();
    let q = query(&store);
    let params = SearchParams::with_epsilon(6.0);
    let d = dir("explain");
    build_index_dir(&store, Categorization::MaxEntropy(12), true, 8, &d).unwrap();
    let idx = open_index_dir(&d, 32).unwrap();
    let (answers, report) = idx.explain(&q, &params).unwrap();
    let (out, stats) = idx
        .query(&QueryRequest::threshold_params(&q, params.clone()))
        .unwrap();
    let baseline = out.into_answer_set();
    assert_eq!(answers.occurrence_set(), baseline.occurrence_set());
    assert_eq!(report.stats, stats);
    assert_eq!(report.kind, "sparse");
    assert_eq!(
        report.suffixes,
        warptree::core::search::IndexBackend::suffix_count(&idx.tree)
    );
    let io = report.io.expect("disk explain reports I/O");
    assert!(
        io.pages_read + io.page_cache_hits > 0,
        "a search must touch pages"
    );
    std::fs::remove_dir_all(&d).ok();
}

/// A registry-backed run surfaces the search funnel, the page/node
/// caches, and the VFS trace under their dotted names in one snapshot.
#[test]
fn registry_snapshot_has_search_and_io_names() {
    let store = corpus();
    let q = query(&store);
    let params = SearchParams::with_epsilon(6.0);
    let d = dir("reg");
    build_index_dir(&store, Categorization::MaxEntropy(12), false, 8, &d).unwrap();
    let reg = MetricsRegistry::new();
    let idx = open_index_dir_metered(&d, 32, &reg).unwrap();
    let metrics = SearchMetrics::register(&reg);
    let answers = idx.search_with(&q, &params, &metrics);
    let snap = reg.snapshot();
    for name in [
        "search.candidates",
        "search.answers",
        "search.nodes_visited",
        "disk.vfs.reads",
        "disk.vfs.read_bytes",
        "disk.page_cache.hits",
        "disk.node_cache.misses",
    ] {
        assert!(
            snap.counters.contains_key(name),
            "metric {name} missing from registry snapshot"
        );
    }
    assert_eq!(snap.counters["search.answers"], answers.len() as u64);
    assert!(snap.counters["disk.vfs.reads"] > 0, "open must read files");
    assert!(snap.histograms.contains_key("search.filter_ns"));
    // The snapshot serializes to parseable JSON with stable keys,
    // timestamped so scrapes can compute true rates.
    let js = snap.to_json();
    assert!(js.starts_with("{\"uptime_ms\":"), "{js}");
    assert!(js.contains("\"snapshot_unix_ms\":"));
    assert!(js.contains("\"counters\":{"));
    assert!(js.contains("\"search.answers\""));
    std::fs::remove_dir_all(&d).ok();
}
