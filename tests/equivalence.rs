//! The headline guarantee of the paper, verified end-to-end: for any
//! database, query and threshold, every index-based search returns
//! *exactly* the answer set of the exact sequential scan — no false
//! dismissals (Theorems 1–3) and, after post-processing, no false
//! alarms.

use proptest::prelude::*;
use warptree::prelude::*;

/// Small random databases of value sequences. Values are drawn from a
/// coarse grid so categorized forms contain runs and shared prefixes (the
/// structurally hard cases for the sparse tree).
fn db_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((0i32..12).prop_map(|v| v as f64 * 0.5), 1..16),
        1..5,
    )
}

fn query_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((0i32..12).prop_map(|v| v as f64 * 0.5), 1..5)
}

fn check_all_indexes(
    db: Vec<Vec<f64>>,
    q: Vec<f64>,
    eps: f64,
    params: SearchParams,
) -> Result<(), TestCaseError> {
    let store = SequenceStore::from_values(db);
    let exact = Index::exact(&store).unwrap();
    let (base, base_stats) = exact.seq_scan(&q, &params);
    let baseline = base.occurrence_set();
    let variants: Vec<(&str, Index)> = vec![
        ("ST", Index::exact(&store).unwrap()),
        (
            "ST_C/EL",
            Index::full(&store, Categorization::EqualLength(3)).unwrap(),
        ),
        (
            "ST_C/ME",
            Index::full(&store, Categorization::MaxEntropy(3)).unwrap(),
        ),
        (
            "ST_C/KM",
            Index::full(&store, Categorization::KMeans(3)).unwrap(),
        ),
        (
            "SST_C/EL",
            Index::sparse(&store, Categorization::EqualLength(3)).unwrap(),
        ),
        (
            "SST_C/ME",
            Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap(),
        ),
        (
            "SST(exact)",
            Index::sparse(&store, Categorization::Exact).unwrap(),
        ),
    ];
    for (name, idx) in &variants {
        let (ans, stats) = idx.search(&q, &params);
        prop_assert_eq!(
            ans.occurrence_set(),
            baseline.clone(),
            "answer set mismatch for {} (eps {})",
            name,
            eps
        );
        // Distances must be the exact (windowed, when applicable) DTW.
        for m in ans.matches() {
            let sub = store.occurrence_values(m.occ);
            let expected = match params.window {
                Some(w) => warptree::core::dtw::dtw_windowed(&q, sub, w),
                None => warptree::core::dtw::dtw(&q, sub),
            };
            prop_assert!(
                (m.dist - expected).abs() < 1e-9,
                "distance mismatch for {}",
                name
            );
            prop_assert!(m.dist <= eps + 1e-9);
        }
        prop_assert_eq!(stats.answers, base_stats.answers);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All seven index variants equal SeqScan exactly.
    #[test]
    fn all_indexes_equal_seqscan(
        db in db_strategy(),
        q in query_strategy(),
        eps_i in 0u32..8,
    ) {
        let eps = eps_i as f64 * 0.5;
        check_all_indexes(db, q, eps, SearchParams::with_epsilon(eps))?;
    }

    /// Same equality under a warping-window constraint (paper §8).
    #[test]
    fn windowed_searches_agree(
        db in db_strategy(),
        q in query_strategy(),
        eps_i in 0u32..6,
        w in 0u32..4,
    ) {
        let eps = eps_i as f64 * 0.5;
        let params = SearchParams::with_epsilon(eps).windowed(w);
        check_all_indexes(db, q, eps, params)?;
    }

    /// Length-range restriction agrees across algorithms.
    #[test]
    fn length_bounded_searches_agree(
        db in db_strategy(),
        q in query_strategy(),
        min_len in 1u32..4,
        extra in 0u32..4,
    ) {
        let eps = 1.0;
        let params = SearchParams::with_epsilon(eps)
            .length_range(min_len, min_len + extra);
        let store = SequenceStore::from_values(db);
        let exact = Index::exact(&store).unwrap();
        let (base, _) = exact.seq_scan(&q, &params);
        for m in base.matches() {
            prop_assert!(m.occ.len >= min_len && m.occ.len <= min_len + extra);
        }
        let sparse =
            Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap();
        let (ans, _) = sparse.search(&q, &params);
        prop_assert_eq!(ans.occurrence_set(), base.occurrence_set());
    }

    /// Theorem 2/3 observed directly: every filter candidate's lower
    /// bound is at most the exact distance of its occurrence.
    #[test]
    fn candidate_lower_bounds_hold(
        db in db_strategy(),
        q in query_strategy(),
    ) {
        let eps = 2.0;
        let store = SequenceStore::from_values(db);
        let idx = Index::sparse(&store, Categorization::EqualLength(2)).unwrap();
        let metrics = SearchMetrics::new();
        let params = SearchParams::with_epsilon(eps);
        let cands = filter_tree(
            idx.tree(),
            idx.alphabet(),
            &q,
            &params,
            &metrics,
        );
        for c in &cands {
            let sub = store.occurrence_values(c.occ);
            let exact = warptree::core::dtw::dtw(&q, sub);
            prop_assert!(
                c.lower_bound <= exact + 1e-9,
                "lower bound {} exceeds exact {} at {:?}",
                c.lower_bound,
                exact,
                c.occ
            );
        }
    }
}

/// Deterministic regression: the paper's own intro example.
#[test]
fn intro_example_all_variants() {
    let store = SequenceStore::from_values(vec![
        vec![20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0],
        vec![20.0, 21.0, 20.0, 23.0],
    ]);
    let q = [20.0, 21.0, 20.0, 23.0];
    let params = SearchParams::with_epsilon(0.0);
    for idx in [
        Index::exact(&store).unwrap(),
        Index::full(&store, Categorization::EqualLength(4)).unwrap(),
        Index::sparse(&store, Categorization::MaxEntropy(4)).unwrap(),
    ] {
        let (ans, _) = idx.search(&q, &params);
        // S1 as a whole warps onto Q exactly.
        assert!(
            ans.matches().iter().any(|m| m.occ.seq == SeqId(0)
                && m.occ.start == 0
                && m.occ.len == 8
                && m.dist == 0.0),
            "intro warping match missing"
        );
        // And Q matches itself inside S2.
        assert!(ans
            .matches()
            .iter()
            .any(|m| m.occ.seq == SeqId(1) && m.occ.len == 4 && m.dist == 0.0));
    }
}
