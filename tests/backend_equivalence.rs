//! Cross-backend equivalence (the tentpole contract of the
//! `IndexBackend` work): a directory built with `--backend esa` answers
//! every query **byte-identically** to the same data built with
//! `--backend tree` — same matches, same distances, same search-funnel
//! statistics — because the ESA's LCP-interval traversal emulates the
//! tree's top-down traversal node for node.
//!
//! Identity is checked for `search`, `knn` and `explain`, at 1 and 8
//! threads, over monolithic and 3-segment directories, for full and
//! sparse indexes, with and without the lower-bound cascade, and for
//! windowed / length-bounded parameters whose `effective_max_len`
//! accounting must agree near segment-boundary suffixes.
//!
//! The suite also pins down the API seams around the equivalence:
//! backend identity is reported by the directory handle and `explain`,
//! a request pinned to the other family fails with the typed
//! [`CoreError::UnsupportedBackend`], and both backends agree with the
//! exact sequential scan (the paper's no-false-dismissal contract).

use std::path::PathBuf;

use warptree::prelude::*;
use warptree::{build_index_dir_backend, open_index_dir, Categorization, DiskIndexDir};
use warptree_core::error::CoreError;
use warptree_disk::{verify_dir_with, RealVfs};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-bke-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Base corpus (segment 0 after build).
fn batch0() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 4.0, 3.0, 2.0, 1.0, 2.0, 3.0],
        vec![5.0, 5.0, 4.0, 3.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        vec![2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 5.0],
    ])
}

/// First append. The last sequence *ends* in the exact pattern
/// `[6.0, 7.0, 8.0]`, so its best match occupies the final positions of
/// a tail-segment sequence — the place where backend-specific suffix
/// enumeration or length accounting near a segment boundary would show.
fn batch1() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, 4.0],
        vec![1.0, 1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0],
    ])
}

/// Second append; carries a near miss of the boundary query.
fn batch2() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![6.0, 7.0, 9.5, 3.0, 2.0, 2.0, 1.0],
        vec![3.0, 4.0, 4.0, 5.0, 5.0, 6.0, 6.0, 5.0, 4.0],
    ])
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![6.0, 7.0, 8.0], // the segment-boundary pattern
        vec![2.0, 3.0, 4.0],
        vec![5.0, 4.0, 3.0, 2.0],
        vec![3.0, 3.0],
    ]
}

/// Parameter sets covering the plain search, the cascade ablation, and
/// the windowed/length-bounded paths whose `effective_max_len` /
/// `effective_min_len` accounting both backends must apply identically.
fn param_sets() -> Vec<(SearchParams, &'static str)> {
    vec![
        (SearchParams::with_epsilon(1.0), "plain"),
        (SearchParams::with_epsilon(1.0).cascaded(false), "nocascade"),
        (SearchParams::with_epsilon(2.0).windowed(1), "windowed"),
        (
            SearchParams::with_epsilon(2.5).length_range(2, 5),
            "bounded",
        ),
        (
            SearchParams::with_epsilon(3.0).windowed(2).length_range(3, 6),
            "windowed+bounded",
        ),
    ]
}

/// Builds one directory with the given backend: monolithic, or base
/// build plus two segment appends.
fn build_dir(kind: BackendKind, sparse: bool, segmented: bool) -> PathBuf {
    let tag = format!(
        "{}-{}-{}",
        kind.as_str(),
        if sparse { "sp" } else { "fu" },
        if segmented { "seg" } else { "mono" }
    );
    let dir = tmpdir(&tag);
    if segmented {
        build_index_dir_backend(&batch0(), Categorization::MaxEntropy(6), sparse, 2, kind, &dir)
            .unwrap();
        warptree::append_index_dir(&dir, &batch1()).unwrap();
        warptree::append_index_dir(&dir, &batch2()).unwrap();
    } else {
        let mut all: Vec<Vec<f64>> = Vec::new();
        for batch in [batch0(), batch1(), batch2()] {
            all.extend(batch.iter().map(|(_, s)| s.values().to_vec()));
        }
        let store = SequenceStore::from_values(all);
        build_index_dir_backend(&store, Categorization::MaxEntropy(6), sparse, 2, kind, &dir)
            .unwrap();
    }
    dir
}

/// Asserts the ESA directory answers byte-identically to the tree
/// directory: matches, distances, and the **complete** [`SearchStats`]
/// snapshot (it is `Eq` and carries no timings, so "same funnel" is an
/// exact equality, structural counters included).
fn assert_backends_agree(tree: &DiskIndexDir, esa: &DiskIndexDir, context: &str) {
    for q in queries() {
        for (params, ptag) in param_sets() {
            for threads in [1u32, 8] {
                let req = QueryRequest::threshold_params(&q, params.clone()).parallel(threads);
                let (t, ts) = tree.query(&req).unwrap();
                let (e, es) = esa.query(&req).unwrap();
                assert_eq!(
                    t.into_answer_set().matches(),
                    e.into_answer_set().matches(),
                    "{context}: search q={q:?} params={ptag} threads={threads}"
                );
                assert_eq!(
                    ts, es,
                    "{context}: funnel q={q:?} params={ptag} threads={threads}"
                );
            }
        }
        for threads in [1u32, 8] {
            let req = QueryRequest::knn_params(&q, KnnParams::new(3)).parallel(threads);
            let (t, ts) = tree.query(&req).unwrap();
            let (e, es) = esa.query(&req).unwrap();
            assert_eq!(
                t.into_ranked(),
                e.into_ranked(),
                "{context}: knn q={q:?} threads={threads}"
            );
            assert_eq!(ts, es, "{context}: knn funnel q={q:?} threads={threads}");
        }
        // explain runs the search too; its report embeds the stats and
        // names the backend that produced them.
        let params = SearchParams::with_epsilon(1.0);
        let (ta, tr) = tree.explain(&q, &params).unwrap();
        let (ea, er) = esa.explain(&q, &params).unwrap();
        assert_eq!(ta.matches(), ea.matches(), "{context}: explain q={q:?}");
        assert_eq!(tr.stats, er.stats, "{context}: explain funnel q={q:?}");
        assert_eq!(tr.suffixes, er.suffixes, "{context}: explain suffixes");
        assert_eq!(tr.backend, "tree", "{context}");
        assert_eq!(er.backend, "esa", "{context}");
    }
}

/// The headline matrix: search/knn/explain × {1, 8} threads ×
/// {monolithic, 3-segment} × {full, sparse}, tree vs. ESA.
#[test]
fn esa_answers_byte_identically_to_tree() {
    for sparse in [false, true] {
        for segmented in [false, true] {
            let tdir = build_dir(BackendKind::Tree, sparse, segmented);
            let edir = build_dir(BackendKind::Esa, sparse, segmented);
            for d in [&tdir, &edir] {
                let report = verify_dir_with(&RealVfs, d).unwrap();
                assert!(report.is_ok(), "verify failed for {d:?}:\n{report}");
            }
            let tree = open_index_dir(&tdir, 64).unwrap();
            let esa = open_index_dir(&edir, 64).unwrap();
            assert_eq!(tree.backend(), BackendKind::Tree);
            assert_eq!(esa.backend(), BackendKind::Esa);
            if segmented {
                assert_eq!(tree.segment_count(), 3);
                assert_eq!(esa.segment_count(), 3);
            }
            let context = format!("sparse={sparse} segmented={segmented}");
            assert_backends_agree(&tree, &esa, &context);
            std::fs::remove_dir_all(&tdir).unwrap();
            std::fs::remove_dir_all(&edir).unwrap();
        }
    }
}

/// Ground truth: the ESA fan-out is also *exact* (no false dismissals),
/// not merely tree-consistent — checked against the sequential scan.
#[test]
fn esa_matches_the_sequential_scan() {
    let dir = build_dir(BackendKind::Esa, true, true);
    let idx = open_index_dir(&dir, 64).unwrap();
    for q in queries() {
        let params = SearchParams::with_epsilon(1.0);
        let (out, _) = idx
            .query(&QueryRequest::threshold_params(&q, params.clone()))
            .unwrap();
        let mut stats = SearchStats::default();
        let scan = seq_scan(&idx.store, &q, &params, SeqScanMode::Full, &mut stats);
        assert_eq!(
            out.into_answer_set().occurrence_set(),
            scan.occurrence_set(),
            "ESA diverges from seq_scan for q={q:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compacting an ESA directory folds segments without changing a single
/// answer or funnel counter — the compaction rebuild is canonical.
#[test]
fn esa_compaction_preserves_answers() {
    let seg = build_dir(BackendKind::Esa, true, true);
    let mono = tmpdir("esa-compacted");
    for entry in std::fs::read_dir(&seg).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), mono.join(entry.file_name())).unwrap();
    }
    let folds = warptree::compact_index_dir(&mono).unwrap();
    assert_eq!(folds, 2, "3 segments fold in two binary steps");

    let seg_idx = open_index_dir(&seg, 64).unwrap();
    let mono_idx = open_index_dir(&mono, 64).unwrap();
    assert_eq!(seg_idx.segment_count(), 3);
    assert_eq!(mono_idx.segment_count(), 1);
    assert_eq!(mono_idx.backend(), BackendKind::Esa);
    for q in queries() {
        let req = QueryRequest::threshold(&q, 1.0);
        let (s, _) = seg_idx.query(&req).unwrap();
        let (m, _) = mono_idx.query(&req).unwrap();
        assert_eq!(
            s.into_answer_set().matches(),
            m.into_answer_set().matches(),
            "compaction changed answers for q={q:?}"
        );
    }
    for d in [&seg, &mono] {
        std::fs::remove_dir_all(d).unwrap();
    }
}

/// A request pinned to the other backend family is a typed rejection —
/// never silently answered by whatever index happens to be open.
#[test]
fn pinned_requests_enforce_backend_identity() {
    let tdir = build_dir(BackendKind::Tree, true, false);
    let edir = build_dir(BackendKind::Esa, true, false);
    let tree = open_index_dir(&tdir, 64).unwrap();
    let esa = open_index_dir(&edir, 64).unwrap();
    let q = vec![2.0, 3.0, 4.0];

    for (idx, own, other) in [
        (&tree, BackendKind::Tree, BackendKind::Esa),
        (&esa, BackendKind::Esa, BackendKind::Tree),
    ] {
        // The matching pin answers identically to no pin.
        let plain = QueryRequest::threshold(&q, 1.0);
        let pinned = QueryRequest::threshold(&q, 1.0).on_backend(own);
        let (a, _) = idx.query(&plain).unwrap();
        let (b, _) = idx.query(&pinned).unwrap();
        assert_eq!(a.into_answer_set().matches(), b.into_answer_set().matches());

        // The mismatched pin is the typed error, for both query kinds.
        let err = idx
            .query(&QueryRequest::threshold(&q, 1.0).on_backend(other))
            .unwrap_err();
        assert!(
            matches!(err, CoreError::UnsupportedBackend { requested, actual }
                if requested == other.as_str() && actual == own.as_str()),
            "wrong error: {err}"
        );
        let err = idx
            .query(&QueryRequest::knn(&q, 2).on_backend(other))
            .unwrap_err();
        assert!(matches!(err, CoreError::UnsupportedBackend { .. }), "{err}");
    }
    for d in [&tdir, &edir] {
        std::fs::remove_dir_all(d).unwrap();
    }
}
