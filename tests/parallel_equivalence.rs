//! The parallel-execution contract: at every thread count, every query
//! path returns **byte-identical** results to the sequential path —
//! same matches in the same order, and (outside the tightened k-NN
//! heap) the same work counters. Covered here across full, sparse and
//! truncated (categorized) indexes, in memory and on disk, for
//! threshold search, k-NN and explain — including a snapshot recovered
//! from a fault-injected torn commit mid-run.

use std::sync::Arc;

use warptree::prelude::*;
use warptree_disk::{
    append_to_index_dir_with, build_dir_with, open_dir_snapshot_with, real_vfs, write_tree,
    DiskTree, FaultMode, FaultVfs,
};
use warptree_suffix::{build_sparse_truncated, TruncateSpec};

const THREADS: [u32; 2] = [2, 8];

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-pareq-{}-{}", std::process::id(), tag));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A deterministic, branch-rich corpus (no RNG: a fixed LCG), wide
/// enough that the parallel filter actually fans out over several root
/// subtrees.
fn corpus() -> SequenceStore {
    let mut state = 0x2545F49_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 100.0
    };
    let seqs: Vec<Vec<f64>> = (0..8)
        .map(|i| (0..24 + 3 * i).map(|_| next()).collect())
        .collect();
    SequenceStore::from_values(seqs)
}

fn query() -> Vec<f64> {
    vec![4.2, 5.1, 4.8, 3.9, 5.5]
}

/// Search must be identical — matches AND stats — at every thread
/// count on the given index.
fn assert_search_equivalent<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    base: &SearchParams,
    tag: &str,
) {
    let m1 = SearchMetrics::new();
    let seq = run_query_with(
        tree,
        alphabet,
        store,
        &QueryRequest::threshold_params(&query(), base.clone()),
        &m1,
    )
    .unwrap()
    .into_answer_set();
    for t in THREADS {
        let params = base.clone().parallel(t);
        let mp = SearchMetrics::new();
        let par = run_query_with(
            tree,
            alphabet,
            store,
            &QueryRequest::threshold_params(&query(), params),
            &mp,
        )
        .unwrap()
        .into_answer_set();
        assert_eq!(seq.matches(), par.matches(), "{tag}: matches, threads={t}");
        assert_eq!(m1.snapshot(), mp.snapshot(), "{tag}: stats, threads={t}");
    }
}

fn assert_knn_equivalent<T: IndexBackend + Sync>(
    tree: &T,
    alphabet: &Alphabet,
    store: &SequenceStore,
    tag: &str,
) {
    for k in [1usize, 5] {
        for non_overlapping in [false, true] {
            let mut base = KnnParams::new(k);
            base.non_overlapping = non_overlapping;
            let m1 = SearchMetrics::new();
            let seq = run_query_with(
                tree,
                alphabet,
                store,
                &QueryRequest::knn_params(&query(), base.clone()),
                &m1,
            )
            .unwrap()
            .into_ranked();
            for t in THREADS {
                let params = base.clone().parallel(t);
                let mp = SearchMetrics::new();
                let par = run_query_with(
                    tree,
                    alphabet,
                    store,
                    &QueryRequest::knn_params(&query(), params),
                    &mp,
                )
                .unwrap()
                .into_ranked();
                assert_eq!(
                    seq, par,
                    "{tag}: knn matches, k={k} no={non_overlapping} threads={t}"
                );
                if non_overlapping {
                    // The overlap-filtering path cannot tighten the
                    // verification threshold, so even the work counters
                    // are identical. (The tightened heap path may do
                    // strictly less work — matches only, above.)
                    assert_eq!(
                        m1.snapshot(),
                        mp.snapshot(),
                        "{tag}: knn stats, k={k} threads={t}"
                    );
                }
            }
        }
    }
}

#[test]
fn search_identical_across_thread_counts_in_memory() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let eps_params = [
        SearchParams::with_epsilon(0.8),
        SearchParams::with_epsilon(5.0),
        SearchParams::with_epsilon(3.0).windowed(2),
    ];
    let full = build_full(cat.clone());
    let sparse = build_sparse(cat.clone());
    for p in &eps_params {
        assert_search_equivalent(&full, &alphabet, &store, p, "full");
        assert_search_equivalent(&sparse, &alphabet, &store, p, "sparse");
    }
    // Truncated (the §8 categorized variant) needs length-bounded
    // params.
    let trunc = build_sparse_truncated(
        cat,
        TruncateSpec {
            max_answer_len: 7,
            min_answer_len: 1,
        },
    );
    for p in &eps_params {
        let p = p.clone().length_range(1, 7);
        assert_search_equivalent(&trunc, &alphabet, &store, &p, "truncated");
    }
}

/// The tracing-determinism contract: running the same query under an
/// active trace changes *nothing* about the answer — matches and work
/// counters are identical to the untraced run, sequentially and at
/// every thread count — while the trace itself captures the funnel.
#[test]
fn tracing_on_never_changes_results_or_stats() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let full = build_full(cat.clone());
    for base in [
        SearchParams::with_epsilon(0.8),
        SearchParams::with_epsilon(5.0),
    ] {
        for t in [1u32, 8] {
            let params = base.clone().parallel(t);
            let req = QueryRequest::threshold_params(&query(), params);
            let plain_m = SearchMetrics::new();
            let plain = run_query_with(&full, &alphabet, &store, &req, &plain_m)
                .unwrap()
                .into_answer_set();
            let trace = warptree::obs::Trace::active("determinism");
            let traced_m = SearchMetrics::new().with_trace(trace.clone());
            let traced = run_query_with(&full, &alphabet, &store, &req, &traced_m)
                .unwrap()
                .into_answer_set();
            assert_eq!(plain.matches(), traced.matches(), "matches, threads={t}");
            assert_eq!(
                plain_m.snapshot(),
                traced_m.snapshot(),
                "stats, threads={t}"
            );
            let data = trace.finish().unwrap();
            let names: Vec<&str> = data.spans.iter().map(|s| s.name.as_str()).collect();
            assert!(names.contains(&"filter"), "threads={t}: {names:?}");
            assert!(names.contains(&"postprocess"), "threads={t}: {names:?}");
            if t > 1 {
                assert!(names.contains(&"filter.task"), "threads={t}: {names:?}");
            }
        }
    }
    // k-NN: the round structure is traced, the ranking is untouched.
    let req = QueryRequest::knn_params(&query(), KnnParams::new(5));
    let plain = run_query_with(&full, &alphabet, &store, &req, &SearchMetrics::new())
        .unwrap()
        .into_ranked();
    let trace = warptree::obs::Trace::active("determinism-knn");
    let traced_m = SearchMetrics::new().with_trace(trace.clone());
    let traced = run_query_with(&full, &alphabet, &store, &req, &traced_m)
        .unwrap()
        .into_ranked();
    assert_eq!(plain, traced);
    let data = trace.finish().unwrap();
    assert!(
        data.spans.iter().any(|s| s.name == "knn.round"),
        "{:?}",
        data.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
}

#[test]
fn knn_identical_across_thread_counts() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let full = build_full(cat.clone());
    assert_knn_equivalent(&full, &alphabet, &store, "full");
    let sparse = build_sparse(cat);
    assert_knn_equivalent(&sparse, &alphabet, &store, "sparse");
}

#[test]
fn disk_tree_search_identical_across_thread_counts() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let mem = build_sparse(cat.clone());
    let dir = tmpdir("disk");
    let path = dir.join("t.wt");
    write_tree(&mem, &path).unwrap();
    let disk = DiskTree::open(&path, cat, 16, 64).unwrap();
    for p in [
        SearchParams::with_epsilon(0.8),
        SearchParams::with_epsilon(5.0),
    ] {
        assert_search_equivalent(&disk, &alphabet, &store, &p, "disk");
    }
    assert_knn_equivalent(&disk, &alphabet, &store, "disk");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn explain_identical_across_thread_counts() {
    let store = corpus();
    let dir = tmpdir("explain");
    build_index_dir(&store, Categorization::MaxEntropy(6), false, 1, &dir).unwrap();
    let idx = open_index_dir(&dir, 64).unwrap();
    let base = SearchParams::with_epsilon(3.0);
    let (seq_ans, seq_rep) = idx.explain(&query(), &base).unwrap();
    for t in THREADS {
        let (par_ans, par_rep) = idx.explain(&query(), &base.clone().parallel(t)).unwrap();
        assert_eq!(seq_ans.matches(), par_ans.matches(), "threads={t}");
        // Wall times differ by nature; the deterministic work counters
        // must not.
        assert_eq!(seq_rep.stats, par_rep.stats, "threads={t}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Mid-run crash-recovery interaction: a torn commit (fault-injected
/// append that dies during its commit sequence) must recover on reopen
/// to a consistent snapshot on which parallel execution is still
/// byte-identical to sequential.
#[test]
fn torn_commit_reopen_preserves_parallel_equivalence() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let extra = SequenceStore::from_values(vec![
        vec![4.2, 5.1, 4.8, 3.9, 5.5, 1.0, 2.0],
        vec![9.0, 0.5, 4.2, 5.1, 4.8],
    ]);

    // Probe: how many vfs operations does a healthy append perform?
    let probe = tmpdir("torn-probe");
    build_dir_with(
        real_vfs(),
        &store,
        &alphabet,
        TreeKind::Sparse,
        1,
        1,
        None,
        &probe,
    )
    .unwrap();
    let counter = FaultVfs::new(u64::MAX, FaultMode::Error);
    append_to_index_dir_with(counter.as_ref(), &probe, &extra).unwrap();
    let total = counter.ops();
    std::fs::remove_dir_all(&probe).unwrap();
    assert!(total > 4, "implausibly few append operations: {total}");

    // Crash the append late — inside or near its commit sequence.
    let dir = tmpdir("torn");
    build_dir_with(
        real_vfs(),
        &store,
        &alphabet,
        TreeKind::Sparse,
        1,
        1,
        None,
        &dir,
    )
    .unwrap();
    let vfs = FaultVfs::new(total - 2, FaultMode::Crash);
    let _ = append_to_index_dir_with(vfs.as_ref(), &dir, &extra);

    // Reopen with a healthy filesystem: recovery lands on the complete
    // old or complete new generation; either way the parallel contract
    // must hold on what it serves.
    let snap = open_dir_snapshot_with(real_vfs().as_ref(), &dir, 16, 64).unwrap();
    for p in [
        SearchParams::with_epsilon(0.8),
        SearchParams::with_epsilon(5.0),
    ] {
        assert_search_equivalent(&snap.tree, &snap.alphabet, &snap.store, &p, "torn-reopen");
    }
    assert_knn_equivalent(&snap.tree, &snap.alphabet, &snap.store, "torn-reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}
