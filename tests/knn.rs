//! k-NN search must return exactly the k closest subsequences — verified
//! against brute force on randomized databases.

use proptest::prelude::*;
use warptree::core::dtw::dtw;
use warptree::core::search::KnnParams;
use warptree::prelude::*;

fn brute_force_all(store: &SequenceStore, q: &[f64]) -> Vec<Match> {
    let mut all = Vec::new();
    for (id, s) in store.iter() {
        for p in 0..s.len() {
            for l in 1..=s.len() - p {
                let sub = s.subseq(p as u32, l as u32);
                all.push(Match {
                    occ: Occurrence::new(id, p as u32, l as u32),
                    dist: dtw(q, sub),
                });
            }
        }
    }
    all.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap().then(a.occ.cmp(&b.occ)));
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Overlap-allowing k-NN over every index variant equals brute force.
    #[test]
    fn knn_equals_brute_force(
        db in prop::collection::vec(
            prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..10),
            1..4,
        ),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        k in 1usize..8,
    ) {
        let store = SequenceStore::from_values(db);
        let expected = brute_force_all(&store, &q);
        let k = k.min(expected.len());
        let params = KnnParams {
            k,
            initial_epsilon: 0.25,
            growth: 3.0,
            max_rounds: 32,
            window: None,
            non_overlapping: false,
            threads: 1,
            cascade: true,
            backend: None,
        };
        for index in [
            Index::exact(&store).unwrap(),
            Index::full(&store, Categorization::EqualLength(3)).unwrap(),
            Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap(),
        ] {
            let (got, _) = index.knn(&q, &params);
            prop_assert_eq!(got.len(), k);
            // Distances must match the brute-force top-k exactly (ties
            // may reorder equal-distance occurrences, so compare the
            // distance multiset and verify each occurrence's distance).
            for (g, e) in got.iter().zip(&expected[..k]) {
                prop_assert!((g.dist - e.dist).abs() < 1e-9,
                    "rank distance mismatch: {} vs {}", g.dist, e.dist);
                let sub = store.occurrence_values(g.occ);
                prop_assert!((g.dist - dtw(&q, sub)).abs() < 1e-9);
            }
        }
    }

    /// Non-overlapping k-NN returns pairwise disjoint regions whose
    /// distances are optimal for the greedy-by-distance selection.
    #[test]
    fn knn_non_overlapping_is_greedy_optimal(
        db in prop::collection::vec(
            prop::collection::vec((0i32..10).prop_map(|v| v as f64), 2..10),
            1..4,
        ),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        k in 1usize..5,
    ) {
        let store = SequenceStore::from_values(db);
        let index =
            Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap();
        let params = KnnParams {
            k,
            initial_epsilon: 0.25,
            growth: 3.0,
            max_rounds: 32,
            window: None,
            non_overlapping: true,
            threads: 1,
            cascade: true,
            backend: None,
        };
        let (got, _) = index.knn(&q, &params);
        // Greedy reference over the brute-force ranking.
        let mut greedy: Vec<Match> = Vec::new();
        for m in brute_force_all(&store, &q) {
            let clash = greedy.iter().any(|p| {
                p.occ.seq == m.occ.seq
                    && m.occ.start < p.occ.start + p.occ.len
                    && p.occ.start < m.occ.start + m.occ.len
            });
            if !clash {
                greedy.push(m);
                if greedy.len() == k {
                    break;
                }
            }
        }
        prop_assert_eq!(got.len(), greedy.len().min(k));
        for (g, e) in got.iter().zip(&greedy) {
            prop_assert!((g.dist - e.dist).abs() < 1e-9);
        }
        // Disjointness.
        for i in 0..got.len() {
            for j in i + 1..got.len() {
                let (a, b) = (got[i].occ, got[j].occ);
                prop_assert!(
                    a.seq != b.seq
                        || a.start + a.len <= b.start
                        || b.start + b.len <= a.start
                );
            }
        }
    }
}
