//! On-disk format stability: files written by *this* build must match
//! the checked-in golden fixtures byte for byte, and fixtures written by
//! *previous* builds must stay readable. An accidental format change —
//! a reordered field, a changed record layout — fails here before it
//! corrupts anyone's index.
//!
//! Regenerate the fixtures intentionally (after bumping the format
//! version!) with:
//!
//! ```text
//! WARPTREE_REGEN_FIXTURES=1 cargo test --test format_stability
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use warptree::prelude::*;
use warptree_disk::{load_corpus, save_corpus, write_tree, DiskTree};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// A small, fully deterministic corpus: fixed values, no RNG.
fn golden_store() -> (SequenceStore, Alphabet) {
    let mut store = SequenceStore::new();
    store.push_named(
        Sequence::new(vec![1.0, 2.0, 2.0, 3.5, 3.5, 3.5, 1.0]),
        "ALPHA",
    );
    store.push(Sequence::new(vec![3.5, 1.0, 2.0]));
    store.push_named(Sequence::new(vec![2.0, 2.0]), "GAMMA");
    let alphabet = Alphabet::max_entropy(&store, 3).unwrap();
    (store, alphabet)
}

fn write_current(dir: &std::path::Path) -> (PathBuf, PathBuf, PathBuf) {
    let (store, alphabet) = golden_store();
    let cat = Arc::new(alphabet.encode_store(&store));
    let corpus = dir.join("golden.corpus");
    let full = dir.join("golden-full.wt");
    let sparse = dir.join("golden-sparse.wt");
    save_corpus(&store, &alphabet, &corpus).unwrap();
    write_tree(&warptree_suffix::build_full(cat.clone()), &full).unwrap();
    write_tree(&warptree_suffix::build_sparse(cat), &sparse).unwrap();
    (corpus, full, sparse)
}

#[test]
fn current_build_matches_golden_fixtures() {
    let fixtures = fixture_dir();
    if std::env::var("WARPTREE_REGEN_FIXTURES").is_ok() {
        std::fs::create_dir_all(&fixtures).unwrap();
        write_current(&fixtures);
        eprintln!("fixtures regenerated at {}", fixtures.display());
        return;
    }
    let tmp = std::env::temp_dir().join(format!("warptree-golden-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let (corpus, full, sparse) = write_current(&tmp);
    for (fresh, name) in [
        (&corpus, "golden.corpus"),
        (&full, "golden-full.wt"),
        (&sparse, "golden-sparse.wt"),
    ] {
        let expected = std::fs::read(fixtures.join(name))
            .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
        let produced = std::fs::read(fresh).unwrap();
        assert_eq!(
            produced, expected,
            "{name} diverged from the golden fixture — the on-disk \
             format changed; bump the format version and regenerate \
             fixtures intentionally"
        );
    }
    std::fs::remove_dir_all(&tmp).unwrap();
}

#[test]
fn golden_fixtures_remain_readable_and_searchable() {
    let fixtures = fixture_dir();
    let (store, alphabet, cat) = load_corpus(&fixtures.join("golden.corpus")).unwrap();
    assert_eq!(store.len(), 3);
    assert_eq!(store.name(SeqId(0)), Some("ALPHA"));
    assert_eq!(store.name(SeqId(1)), None);
    for name in ["golden-full.wt", "golden-sparse.wt"] {
        let tree = DiskTree::open(&fixtures.join(name), cat.clone(), 8, 32).unwrap();
        let params = SearchParams::with_epsilon(0.5);
        let q = [2.0, 3.5];
        let (out, _) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q, params.clone()),
        )
        .unwrap();
        let got = out.into_answer_set();
        let mut stats = SearchStats::default();
        let expected = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
        assert_eq!(got.occurrence_set(), expected.occurrence_set());
        assert!(!got.is_empty());
    }
}
