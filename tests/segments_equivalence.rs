//! The multi-segment equivalence contract (the tentpole of the online
//! ingest work): an index grown by segment appends answers every query
//! **byte-identically** to the same data folded into one monolithic
//! tree — before compaction, mid-compaction, after full compaction,
//! at every thread count, and after a torn compaction commit has been
//! recovered.
//!
//! Identity is checked at two levels:
//! * final results — matches and distances, for `search` and `knn`;
//! * the candidate-level funnel (`candidates`, `stored_candidates`,
//!   `lb2_candidates`, `postprocessed`, `postprocess_cells`,
//!   `false_alarms`, `answers`) — the numbers `explain` reports.
//!   Structural counters (`nodes_visited`, `filter_cells`, …) may
//!   legitimately differ: N small trees are traversed instead of one
//!   big one. The candidate set they produce may not.

use std::path::{Path, PathBuf};

use warptree::prelude::*;
use warptree::{build_index_dir, open_index_dir, Categorization, DiskIndexDir};
use warptree_disk::{verify_dir_with, FaultMode, FaultVfs, RealVfs};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-seg-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn copy_dir(from: &Path, to: &Path) {
    let _ = std::fs::remove_dir_all(to);
    std::fs::create_dir_all(to).unwrap();
    for entry in std::fs::read_dir(from).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), to.join(entry.file_name())).unwrap();
    }
}

/// Base corpus (segment 0 after build).
fn batch0() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![1.0, 2.0, 3.0, 4.0, 5.0, 4.0, 3.0, 2.0, 1.0, 2.0, 3.0],
        vec![5.0, 5.0, 4.0, 3.0, 3.0, 4.0, 5.0, 6.0, 7.0],
        vec![2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 4.0, 4.0, 4.0, 5.0],
    ])
}

/// First append. The last sequence *ends* in the exact pattern
/// `[6.0, 7.0, 8.0]` — its best match sits in the final `query_len`
/// positions of a tail-segment sequence, so finding it proves the tail
/// tree indexes suffixes right up to the segment boundary.
fn batch1() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, 4.0],
        vec![1.0, 1.0, 2.0, 4.0, 5.0, 6.0, 7.0, 8.0],
    ])
}

/// Second append; carries a *near miss* of the boundary query
/// (`[6.0, 7.0, 9.5]`, distance > 1 from `[6.0, 7.0, 8.0]`) that a
/// sloppy fan-out would confuse with the batch1 ending.
fn batch2() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![6.0, 7.0, 9.5, 3.0, 2.0, 2.0, 1.0],
        vec![3.0, 4.0, 4.0, 5.0, 5.0, 6.0, 6.0, 5.0, 4.0],
    ])
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![6.0, 7.0, 8.0], // the segment-boundary pattern
        vec![2.0, 3.0, 4.0],
        vec![5.0, 4.0, 3.0, 2.0],
        vec![3.0, 3.0],
    ]
}

/// Builds the segmented directory: base build + two appends
/// (3 live segments), for both tree kinds.
fn build_segmented(dir: &Path, sparse: bool) {
    build_index_dir(&batch0(), Categorization::MaxEntropy(6), sparse, 2, dir).unwrap();
    warptree::append_index_dir(dir, &batch1()).unwrap();
    warptree::append_index_dir(dir, &batch2()).unwrap();
}

/// The candidate-level slice of the funnel — what must be identical
/// across segment layouts.
fn funnel(s: &SearchStats) -> [u64; 7] {
    [
        s.candidates,
        s.stored_candidates,
        s.lb2_candidates,
        s.postprocessed,
        s.postprocess_cells,
        s.false_alarms,
        s.answers,
    ]
}

/// Asserts `got` answers every query/knn byte-identically to `want`,
/// including the candidate-level funnel, at 1 and 8 threads.
fn assert_equivalent(got: &DiskIndexDir, want: &DiskIndexDir, context: &str) {
    for q in queries() {
        for threads in [1u32, 8] {
            let req = QueryRequest::threshold_params(&q, SearchParams::with_epsilon(1.0))
                .parallel(threads);
            let (w, ws) = want.query(&req).unwrap();
            let (g, gs) = got.query(&req).unwrap();
            assert_eq!(
                w.into_answer_set().matches(),
                g.into_answer_set().matches(),
                "{context}: search q={q:?} threads={threads}"
            );
            assert_eq!(
                funnel(&ws),
                funnel(&gs),
                "{context}: funnel q={q:?} threads={threads}"
            );

            let req = QueryRequest::knn_params(&q, KnnParams::new(3)).parallel(threads);
            let (w, _) = want.query(&req).unwrap();
            let (g, _) = got.query(&req).unwrap();
            assert_eq!(
                w.into_ranked(),
                g.into_ranked(),
                "{context}: knn q={q:?} threads={threads}"
            );
        }
    }
}

/// Every layout of the same data answers identically: 3 segments,
/// 2 segments (mid-compaction), and 1 merged tree — and all of them
/// agree with the exact sequential scan.
#[test]
fn segmented_layouts_answer_byte_identically() {
    for sparse in [false, true] {
        let tag = if sparse { "sp" } else { "fu" };
        let seg = tmpdir(&format!("layout-{tag}"));
        build_segmented(&seg, sparse);

        // Fold the segmented directory copy step by step.
        let mid = tmpdir(&format!("layout-{tag}-mid"));
        copy_dir(&seg, &mid);
        assert!(warptree_disk::compact_once(&mid).unwrap().is_some());

        let mono = tmpdir(&format!("layout-{tag}-mono"));
        copy_dir(&mid, &mono);
        let folds = warptree::compact_index_dir(&mono).unwrap();
        assert_eq!(folds, 1, "one fold left after the mid-compaction step");

        let seg_idx = open_index_dir(&seg, 64).unwrap();
        let mid_idx = open_index_dir(&mid, 64).unwrap();
        let mono_idx = open_index_dir(&mono, 64).unwrap();
        assert_eq!(seg_idx.segment_count(), 3);
        assert_eq!(mid_idx.segment_count(), 2);
        assert_eq!(mono_idx.segment_count(), 1);
        for dir in [&seg, &mid, &mono] {
            let report = verify_dir_with(&RealVfs, dir).unwrap();
            assert!(report.is_ok(), "sparse={sparse}: verify failed:\n{report}");
        }

        assert_equivalent(&seg_idx, &mono_idx, &format!("sparse={sparse} 3-seg"));
        assert_equivalent(&mid_idx, &mono_idx, &format!("sparse={sparse} 2-seg"));

        // Ground truth: the fan-out is also *exact* (paper's
        // no-false-dismissal contract), not merely self-consistent.
        for q in queries() {
            let params = SearchParams::with_epsilon(1.0);
            let (out, _) = seg_idx
                .query(&QueryRequest::threshold_params(&q, params.clone()))
                .unwrap();
            let mut stats = SearchStats::default();
            let scan = seq_scan(&seg_idx.store, &q, &params, SeqScanMode::Full, &mut stats);
            assert_eq!(
                out.into_answer_set().occurrence_set(),
                scan.occurrence_set(),
                "sparse={sparse}: fan-out diverges from seq_scan for q={q:?}"
            );
        }

        for d in [&seg, &mid, &mono] {
            std::fs::remove_dir_all(d).unwrap();
        }
    }
}

/// The segment-boundary satellite: the best match of the boundary
/// query ends exactly at the end of a sequence that lives in tail
/// segment 1, and the near-miss in tail segment 2 stays excluded.
#[test]
fn boundary_suffixes_of_tail_segments_are_found() {
    let dir = tmpdir("boundary");
    build_segmented(&dir, true);
    let idx = open_index_dir(&dir, 64).unwrap();
    assert_eq!(idx.segment_count(), 3);

    let q = vec![6.0, 7.0, 8.0];
    let (out, _) = idx.query(&QueryRequest::threshold(&q, 0.5)).unwrap();
    let answers = out.into_answer_set();
    // batch1's second sequence is global SeqId 4; the match occupies
    // its last three positions (start 5 of a len-8 sequence).
    assert!(
        answers
            .matches()
            .iter()
            .any(|m| m.occ.seq == SeqId(4) && m.occ.start == 5 && m.dist == 0.0),
        "exact boundary match missing: {:?}",
        answers.matches()
    );
    // The batch2 near-miss ([6.0, 7.0, 9.5], SeqId 5) is outside ε.
    assert!(
        answers.matches().iter().all(|m| m.occ.seq != SeqId(5)),
        "near-miss leaked in: {:?}",
        answers.matches()
    );

    // knn(1) ranks the boundary match first.
    let (out, _) = idx
        .query(&QueryRequest::knn_params(&q, KnnParams::new(1)))
        .unwrap();
    let top = out.into_ranked();
    assert_eq!(top.len(), 1);
    assert_eq!(top[0].occ.seq, SeqId(4));
    assert_eq!(top[0].occ.start, 5);
    assert_eq!(top[0].dist, 0.0);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// Torn compaction commits: whatever single filesystem operation fails
/// (transiently or as a hard crash) mid-fold, reopening the directory
/// recovers a committed generation that still answers byte-identically
/// to the fully compacted reference — and a healthy retry completes
/// the fold.
#[test]
fn recovered_torn_compaction_answers_identically() {
    // References: the 3-segment build and its fully compacted twin.
    let seg = tmpdir("torn-ref");
    build_segmented(&seg, true);
    let mono = tmpdir("torn-mono");
    copy_dir(&seg, &mono);
    warptree::compact_index_dir(&mono).unwrap();
    let mono_idx = open_index_dir(&mono, 64).unwrap();

    // Count the fold's filesystem operations on a throwaway copy.
    let probe = tmpdir("torn-probe");
    copy_dir(&seg, &probe);
    let counter = FaultVfs::new(u64::MAX, FaultMode::Error);
    let reg = MetricsRegistry::noop();
    warptree_disk::compact_once_with(counter.as_ref(), &probe, &reg)
        .unwrap()
        .expect("probe fold ran");
    let total = counter.ops();
    std::fs::remove_dir_all(&probe).unwrap();
    assert!(total > 10, "implausibly few operations counted: {total}");

    for mode in [FaultMode::Error, FaultMode::Crash] {
        for k in 1..=total {
            let context = format!("compact {mode:?} k={k}");
            let dir = tmpdir("torn-sweep");
            copy_dir(&seg, &dir);
            let vfs = FaultVfs::new(k, mode);
            let result = warptree_disk::compact_once_with(vfs.as_ref(), &dir, &reg);

            // Reopen with a healthy filesystem: the recovery sweep runs
            // and the committed generation — old or new — must answer
            // exactly like the monolithic reference.
            let idx = open_index_dir(&dir, 64)
                .unwrap_or_else(|e| panic!("{context}: unrecoverable: {e}"));
            let report = verify_dir_with(&RealVfs, &dir).unwrap();
            assert!(report.is_ok(), "{context}: verify failed:\n{report}");
            assert_equivalent(&idx, &mono_idx, &context);
            if result.is_ok() {
                // A reported commit must actually hold the folded state.
                assert_eq!(idx.segment_count(), 2, "{context}: lost a commit");
            }
            drop(idx);

            // A healthy retry finishes the job.
            warptree::compact_index_dir(&dir).unwrap();
            let idx = open_index_dir(&dir, 64).unwrap();
            assert_eq!(idx.segment_count(), 1, "{context}: retry left tails");
            assert_equivalent(&idx, &mono_idx, &format!("{context} after retry"));
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
    std::fs::remove_dir_all(&seg).unwrap();
    std::fs::remove_dir_all(&mono).unwrap();
}
