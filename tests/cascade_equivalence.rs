//! The lower-bound-cascade contract: turning the cascade on changes
//! *nothing* about the answers — matches (values bit-identical), k-NN
//! rankings and the candidate funnel are byte-identical with the
//! cascade on or off, at every thread count and across segment
//! layouts. Only the exact-table cell count (which the cascade exists
//! to shrink) and the per-tier kill counters may differ.
//!
//! Also pins the ε-boundary semantics the cascade exposed: the
//! acceptance contract everywhere is `dist ≤ ε` (non-strict), so a
//! true answer landing *exactly* on ε is kept by the filter, by every
//! cascade tier (strict `lb > ε` kills only), by post-processing and
//! by all sequential-scan modes — and excluded by all of them at the
//! next representable ε below.

use std::sync::Arc;

use warptree::prelude::*;
use warptree::{build_index_dir, open_index_dir, Categorization, ExplainReport, Index};

const THREADS: [u32; 2] = [1, 8];

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-casceq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Deterministic branch-rich corpus (fixed LCG, no RNG dependency).
fn corpus() -> SequenceStore {
    let mut state = 0x9E3779B9_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 1000) as f64 / 100.0
    };
    let seqs: Vec<Vec<f64>> = (0..10)
        .map(|i| (0..20 + 5 * i).map(|_| next()).collect())
        .collect();
    SequenceStore::from_values(seqs)
}

fn queries() -> Vec<Vec<f64>> {
    vec![
        vec![4.2, 5.1, 4.8, 3.9, 5.5],
        vec![2.0, 3.0, 4.0],
        vec![7.5, 7.0, 6.5, 6.0],
    ]
}

/// Cascade on vs off must agree on everything except the work the
/// cascade saves: `postprocess_cells` may only shrink, the off-side
/// kill counters are zero, and every other counter is identical.
fn assert_stats_equal_modulo_cascade(on: &SearchStats, off: &SearchStats, ctx: &str) {
    assert_eq!(
        off.cascade_lb_keogh_kills + off.cascade_lb_improved_kills + off.cascade_abandon_kills,
        0,
        "{ctx}: cascade-off run reported cascade kills"
    );
    assert!(
        on.postprocess_cells <= off.postprocess_cells,
        "{ctx}: cascade increased exact-table cells ({} > {})",
        on.postprocess_cells,
        off.postprocess_cells
    );
    let mut a = *on;
    let mut b = *off;
    a.postprocess_cells = 0;
    b.postprocess_cells = 0;
    a.cascade_lb_keogh_kills = 0;
    a.cascade_lb_improved_kills = 0;
    a.cascade_abandon_kills = 0;
    assert_eq!(a, b, "{ctx}: funnel diverges beyond cascade-only fields");
}

#[test]
fn search_identical_cascade_on_or_off_in_memory() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let full = build_full(cat.clone());
    let sparse = build_sparse(cat);
    let eps_params = [
        SearchParams::with_epsilon(0.8),
        SearchParams::with_epsilon(5.0),
        SearchParams::with_epsilon(3.0).windowed(2),
    ];
    for q in queries() {
        for base in &eps_params {
            for t in THREADS {
                for (tree, tag) in [(&full, "full"), (&sparse, "sparse")] {
                    let ctx = format!("{tag} q={q:?} eps={} t={t}", base.epsilon);
                    let run = |cascade: bool| {
                        let params = base.clone().parallel(t).cascaded(cascade);
                        let m = SearchMetrics::new();
                        let ans = run_query_with(
                            tree,
                            &alphabet,
                            &store,
                            &QueryRequest::threshold_params(&q, params),
                            &m,
                        )
                        .unwrap()
                        .into_answer_set();
                        (ans, m.snapshot())
                    };
                    let (on, son) = run(true);
                    let (off, soff) = run(false);
                    assert_eq!(on.matches(), off.matches(), "{ctx}: matches");
                    assert_stats_equal_modulo_cascade(&son, &soff, &ctx);
                }
            }
        }
    }
}

#[test]
fn knn_identical_cascade_on_or_off() {
    let store = corpus();
    let alphabet = Alphabet::max_entropy(&store, 6).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let full = build_full(cat.clone());
    let sparse = build_sparse(cat);
    for q in queries() {
        for k in [1usize, 5] {
            for non_overlapping in [false, true] {
                for t in THREADS {
                    for (tree, tag) in [(&full, "full"), (&sparse, "sparse")] {
                        let run = |cascade: bool| {
                            let mut params = KnnParams::new(k).parallel(t).cascaded(cascade);
                            params.non_overlapping = non_overlapping;
                            run_query_with(
                                tree,
                                &alphabet,
                                &store,
                                &QueryRequest::knn_params(&q, params),
                                &SearchMetrics::new(),
                            )
                            .unwrap()
                            .into_ranked()
                        };
                        assert_eq!(
                            run(true),
                            run(false),
                            "{tag}: knn q={q:?} k={k} no={non_overlapping} t={t}"
                        );
                    }
                }
            }
        }
    }
}

/// The cascade is layout-independent: a 3-segment directory and its
/// compacted monolithic twin report identical funnels with the cascade
/// on, identical funnels with it off, and identical answers across all
/// four combinations.
#[test]
fn segment_layouts_agree_cascade_on_or_off() {
    let store = corpus();
    let seg = tmpdir("seg");
    // Base build on the first 4 sequences, then two appends of 3.
    let part = |range: std::ops::Range<usize>| {
        let mut out = SequenceStore::new();
        for id in range {
            out.push(store.get(SeqId(id as u32)).clone());
        }
        out
    };
    build_index_dir(&part(0..4), Categorization::MaxEntropy(6), true, 2, &seg).unwrap();
    warptree::append_index_dir(&seg, &part(4..7)).unwrap();
    warptree::append_index_dir(&seg, &part(7..10)).unwrap();
    let mono = tmpdir("mono");
    for entry in std::fs::read_dir(&seg).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), mono.join(entry.file_name())).unwrap();
    }
    warptree::compact_index_dir(&mono).unwrap();

    let seg_idx = open_index_dir(&seg, 64).unwrap();
    let mono_idx = open_index_dir(&mono, 64).unwrap();
    assert_eq!(seg_idx.segment_count(), 3);
    assert_eq!(mono_idx.segment_count(), 1);

    for q in queries() {
        for t in THREADS {
            let run = |idx: &warptree::DiskIndexDir, cascade: bool| {
                let params = SearchParams::with_epsilon(2.0)
                    .parallel(t)
                    .cascaded(cascade);
                let (out, stats) = idx
                    .query(&QueryRequest::threshold_params(&q, params))
                    .unwrap();
                (out.into_answer_set().matches().to_vec(), stats)
            };
            let (m_seg_on, s_seg_on) = run(&seg_idx, true);
            let (m_seg_off, s_seg_off) = run(&seg_idx, false);
            let (m_mono_on, s_mono_on) = run(&mono_idx, true);
            let (m_mono_off, s_mono_off) = run(&mono_idx, false);
            let ctx = format!("q={q:?} t={t}");
            assert_eq!(m_seg_on, m_mono_on, "{ctx}: on, seg vs mono");
            assert_eq!(m_seg_on, m_seg_off, "{ctx}: seg, on vs off");
            assert_eq!(m_mono_on, m_mono_off, "{ctx}: mono, on vs off");
            assert_stats_equal_modulo_cascade(&s_seg_on, &s_seg_off, &format!("{ctx} seg"));
            assert_stats_equal_modulo_cascade(&s_mono_on, &s_mono_off, &format!("{ctx} mono"));
            // Candidate-level funnel identical across layouts per mode:
            // the cascade sees the same groups either way.
            for (a, b, tag) in [
                (&s_seg_on, &s_mono_on, "on"),
                (&s_seg_off, &s_mono_off, "off"),
            ] {
                assert_eq!(
                    [
                        a.candidates,
                        a.postprocessed,
                        a.postprocess_cells,
                        a.false_alarms,
                        a.answers,
                        a.cascade_lb_keogh_kills,
                        a.cascade_lb_improved_kills,
                        a.cascade_abandon_kills,
                    ],
                    [
                        b.candidates,
                        b.postprocessed,
                        b.postprocess_cells,
                        b.false_alarms,
                        b.answers,
                        b.cascade_lb_keogh_kills,
                        b.cascade_lb_improved_kills,
                        b.cascade_abandon_kills,
                    ],
                    "{ctx}: cascade-{tag} funnel, seg vs mono"
                );
            }
        }
    }
    std::fs::remove_dir_all(&seg).unwrap();
    std::fs::remove_dir_all(&mono).unwrap();
}

/// Explain surfaces the per-tier kill counts, and on a tight-ε query
/// over this corpus the cascade actually kills (the counters are live,
/// not decorative).
#[test]
fn explain_reports_cascade_kills() {
    let store = corpus();
    let index = Index::sparse(&store, Categorization::MaxEntropy(6)).unwrap();
    let q = queries().remove(0);
    let (_, report) =
        ExplainReport::for_index(&index, &q, &SearchParams::with_epsilon(0.8)).unwrap();
    let s = &report.stats;
    let kills = s.cascade_lb_keogh_kills + s.cascade_lb_improved_kills + s.cascade_abandon_kills;
    assert!(
        kills > 0,
        "tight-eps query produced no cascade kills: {s:?}"
    );
    assert_eq!(
        s.postprocessed,
        s.answers + s.false_alarms,
        "funnel invariant broke under the cascade"
    );
    assert!(
        kills <= s.false_alarms,
        "kills must be a subset of false alarms"
    );
    let json = report.to_json();
    for key in [
        "\"cascade\"",
        "\"lb_keogh_kills\"",
        "\"lb_improved_kills\"",
        "\"abandon_kills\"",
    ] {
        assert!(json.contains(key), "explain JSON lost {key}: {json}");
    }
}

/// The ε-boundary corpus: all values are small integers, so every
/// base distance and every DTW path sum is computed exactly in f64 —
/// no rounding anywhere. The query's best alignment against the
/// embedded pattern `[1, 2, 5]` costs exactly 2.0.
fn boundary_store() -> SequenceStore {
    SequenceStore::from_values(vec![
        vec![50.0, 1.0, 2.0, 5.0, 50.0],
        vec![30.0, 30.0, 30.0, 30.0],
    ])
}

const BOUNDARY_QUERY: [f64; 3] = [1.0, 2.0, 3.0];
const BOUNDARY_EPS: f64 = 2.0;

fn boundary_occ() -> Occurrence {
    Occurrence::new(SeqId(0), 1, 3)
}

/// The largest f64 strictly below `x` (next representable downward).
fn next_down(x: f64) -> f64 {
    f64::from_bits(x.to_bits() - 1)
}

/// A true answer whose exact distance IS ε is an answer (`dist ≤ ε`),
/// in every path: tree filter + cascade + post-processing, cascade
/// off, and all three sequential-scan modes. One ulp below ε it is
/// excluded by all of them. This pins the strict-kill convention
/// (`lb > ε`) of every cascade tier against the non-strict acceptance
/// (`dist ≤ ε`) of the funnel — with the filter's float slack removed.
///
/// Note the boundary is *adversarial* for the cascade: with no window
/// the envelope bound of the pattern is exactly 2.0 = ε (the envelope
/// is tight there), so an off-by-one `>=` kill would dismiss a true
/// answer and fail this test.
#[test]
fn answers_exactly_on_epsilon_are_kept_everywhere() {
    let store = boundary_store();
    let q = BOUNDARY_QUERY;
    for window in [None, Some(1u32)] {
        for (eps, expect_boundary) in [(BOUNDARY_EPS, true), (next_down(BOUNDARY_EPS), false)] {
            let mut base = SearchParams::with_epsilon(eps);
            base.window = window;
            let ctx = format!("window={window:?} eps={eps}");

            // Index paths: exact (singleton alphabet), full, sparse —
            // each with the cascade on and off.
            let indexes = [
                Index::exact(&store).unwrap(),
                Index::full(&store, Categorization::EqualLength(4)).unwrap(),
                Index::sparse(&store, Categorization::MaxEntropy(4)).unwrap(),
            ];
            let mut answer_sets = Vec::new();
            for (i, index) in indexes.iter().enumerate() {
                for cascade in [true, false] {
                    let (ans, _) = index.search(&q, &base.clone().cascaded(cascade));
                    let hit = ans
                        .matches()
                        .iter()
                        .find(|m| m.occ == boundary_occ())
                        .copied();
                    if expect_boundary {
                        let hit = hit.unwrap_or_else(|| {
                            panic!(
                                "{ctx}: index {i} cascade={cascade} dismissed the boundary answer"
                            )
                        });
                        assert_eq!(
                            hit.dist, BOUNDARY_EPS,
                            "{ctx}: index {i} boundary distance not exact"
                        );
                    } else {
                        assert!(
                            hit.is_none(),
                            "{ctx}: index {i} cascade={cascade} kept a match beyond epsilon"
                        );
                    }
                    answer_sets.push(ans.occurrence_set());
                }
            }
            // Sequential-scan ground truth, all three modes.
            for mode in [
                SeqScanMode::Full,
                SeqScanMode::EarlyAbandon,
                SeqScanMode::Cascade,
            ] {
                let mut stats = SearchStats::default();
                let scan = seq_scan(&store, &q, &base, mode, &mut stats);
                assert_eq!(
                    scan.matches().iter().any(|m| m.occ == boundary_occ()),
                    expect_boundary,
                    "{ctx}: seq_scan {mode:?} disagrees on the boundary answer"
                );
                answer_sets.push(scan.occurrence_set());
            }
            // Every path returned the same occurrence set.
            for (i, s) in answer_sets.iter().enumerate() {
                assert_eq!(s, &answer_sets[0], "{ctx}: path {i} diverges from path 0");
            }
        }
    }
}
