//! Invariants of the cost counters ([`SearchStats`]) across random
//! workloads — the counters feed the experiment harness, so their
//! consistency matters as much as the answers'.

use proptest::prelude::*;
use warptree::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn search_stats_are_coherent(
        db in prop::collection::vec(
            prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..14),
            1..5,
        ),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        eps_i in 0u32..6,
        sparse in any::<bool>(),
    ) {
        let eps = eps_i as f64;
        let store = SequenceStore::from_values(db);
        let index = if sparse {
            Index::sparse(&store, Categorization::MaxEntropy(3)).unwrap()
        } else {
            Index::full(&store, Categorization::MaxEntropy(3)).unwrap()
        };
        let params = SearchParams::with_epsilon(eps);
        let (answers, stats) = index.search(&q, &params);

        // Answer accounting.
        prop_assert_eq!(stats.answers, answers.len() as u64);
        prop_assert_eq!(
            stats.postprocessed,
            stats.answers + stats.false_alarms,
            "verified candidates split into answers and false alarms"
        );
        // Deduplication can only shrink: verified <= emitted candidates.
        prop_assert!(stats.postprocessed <= stats.candidates);
        // Work accounting: every row costs at least one cell, at most |Q|.
        prop_assert!(stats.filter_cells >= stats.rows_pushed);
        prop_assert!(
            stats.filter_cells <= stats.rows_pushed * q.len() as u64
        );
        // Visited nodes bound the tree; rows relate to edges walked.
        prop_assert!(
            stats.nodes_visited < 2 * store.total_len() + 2,
            "visited more nodes than a suffix tree can hold"
        );

        // Monotonicity in ε: a larger threshold never yields fewer
        // answers or less traversal work.
        let bigger = SearchParams::with_epsilon(eps + 1.0);
        let (more, stats2) = index.search(&q, &bigger);
        prop_assert!(more.len() >= answers.len());
        prop_assert!(stats2.rows_pushed >= stats.rows_pushed);
    }

    /// The scan's counters behave, and early abandoning only reduces
    /// work while keeping answers identical.
    #[test]
    fn scan_stats_are_coherent(
        db in prop::collection::vec(
            prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..14),
            1..5,
        ),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        eps_i in 0u32..6,
    ) {
        let eps = eps_i as f64;
        let store = SequenceStore::from_values(db);
        let params = SearchParams::with_epsilon(eps);
        let mut full = SearchStats::default();
        let a = seq_scan(&store, &q, &params, SeqScanMode::Full, &mut full);
        let mut ea = SearchStats::default();
        let b = seq_scan(
            &store,
            &q,
            &params,
            SeqScanMode::EarlyAbandon,
            &mut ea,
        );
        prop_assert_eq!(a.occurrence_set(), b.occurrence_set());
        prop_assert!(ea.rows_pushed <= full.rows_pushed);
        // The full scan pushes exactly one row per (suffix, prefix) pair.
        let expected_rows: u64 = store
            .iter()
            .map(|(_, s)| (s.len() * (s.len() + 1) / 2) as u64)
            .sum();
        prop_assert_eq!(full.rows_pushed, expected_rows);
        prop_assert_eq!(
            full.filter_cells,
            expected_rows * q.len() as u64
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The segment-aligned comparator is always a subset of the full
    /// scan, aligned to its segment grid, and converges to the full scan
    /// at segment length 1.
    #[test]
    fn aligned_scan_subset_property(
        db in prop::collection::vec(
            prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..14),
            1..4,
        ),
        q in prop::collection::vec((0i32..10).prop_map(|v| v as f64), 1..4),
        eps_i in 0u32..5,
        seg in 1u32..5,
    ) {
        use warptree::core::search::aligned_scan;
        let eps = eps_i as f64;
        let store = SequenceStore::from_values(db);
        let params = SearchParams::with_epsilon(eps);
        let mut s1 = SearchStats::default();
        let aligned = aligned_scan(&store, &q, &params, seg, &mut s1);
        let mut s2 = SearchStats::default();
        let full =
            seq_scan(&store, &q, &params, SeqScanMode::Full, &mut s2);
        let full_occs = full.occurrence_set();
        for m in aligned.matches() {
            prop_assert_eq!(m.occ.start % seg, 0);
            prop_assert_eq!(m.occ.len % seg, 0);
            prop_assert!(full_occs.binary_search(&m.occ).is_ok());
        }
        if seg == 1 {
            prop_assert_eq!(aligned.occurrence_set(), full_occs);
        }
        prop_assert!(s1.rows_pushed <= s2.rows_pushed);
    }
}
