//! Medium-scale deterministic end-to-end check: a realistic corpus,
//! multiple queries and thresholds, every index variant (memory + disk)
//! against the exact scan. Complements the randomized property tests
//! with a fixed workload large enough to exercise deep trees, long
//! runs, and non-trivial candidate volumes.

use std::sync::Arc;
use warptree::prelude::*;
use warptree_disk::{write_tree, DiskTree};
use warptree_suffix::{build_full, build_sparse};

#[test]
fn medium_stock_corpus_all_variants() {
    let store = stock_corpus(&StockConfig {
        sequences: 60,
        mean_len: 100,
        len_std: 15.0,
        seed: 0xBEEF,
        ..Default::default()
    });
    let workload = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 5,
            mean_len: 12,
            len_jitter: 3,
            noise_std: 0.8,
            ..Default::default()
        },
    );
    let dir = std::env::temp_dir().join(format!("warptree-medium-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let configs: Vec<(String, Alphabet)> = vec![
        ("exact".into(), Alphabet::singleton(&store).unwrap()),
        ("el16".into(), Alphabet::equal_length(&store, 16).unwrap()),
        ("me16".into(), Alphabet::max_entropy(&store, 16).unwrap()),
        ("me64".into(), Alphabet::max_entropy(&store, 64).unwrap()),
        ("km16".into(), Alphabet::kmeans(&store, 16, 50).unwrap()),
    ];

    for eps in [1.0, 5.0, 12.0] {
        for windowed in [None, Some(4u32)] {
            let mut params = SearchParams::with_epsilon(eps);
            params.window = windowed;
            for (qi, q) in workload.queries().iter().enumerate() {
                let mut scan_stats = SearchStats::default();
                let expected = seq_scan(
                    &store,
                    &q.values,
                    &params,
                    SeqScanMode::EarlyAbandon,
                    &mut scan_stats,
                )
                .occurrence_set();
                for (name, alphabet) in &configs {
                    let cat = Arc::new(alphabet.encode_store(&store));
                    for (kind, tree) in [
                        ("full", build_full(cat.clone())),
                        ("sparse", build_sparse(cat.clone())),
                    ] {
                        let (mem, _) = run_query(
                            &tree,
                            alphabet,
                            &store,
                            &QueryRequest::threshold_params(&q.values, params.clone()),
                        )
                        .unwrap();
                        let mem = mem.into_answer_set();
                        assert_eq!(
                            mem.occurrence_set(),
                            expected,
                            "mem {name}/{kind} eps {eps} w {windowed:?} q{qi}"
                        );
                        // Disk round trip for a subset (expensive).
                        if eps == 5.0 && qi == 0 {
                            let path = dir.join(format!("{name}-{kind}.wt"));
                            write_tree(&tree, &path).unwrap();
                            let disk = DiskTree::open(&path, cat.clone(), 16, 128).unwrap();
                            let (d, _) = run_query(
                                &disk,
                                alphabet,
                                &store,
                                &QueryRequest::threshold_params(&q.values, params.clone()),
                            )
                            .unwrap();
                            let d = d.into_answer_set();
                            assert_eq!(d.occurrence_set(), expected, "disk {name}/{kind}");
                        }
                    }
                }
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn medium_artificial_corpus_sparse_me() {
    // The paper's artificial data at moderate scale, checking stats
    // consistency along with answers.
    let store = artificial_corpus(&ArtificialConfig {
        sequences: 80,
        len: 90,
        len_jitter: 10,
        seed: 0xACE,
        ..Default::default()
    });
    let alphabet = Alphabet::max_entropy(&store, 24).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let tree = build_sparse(cat);
    let workload = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 4,
            mean_len: 15,
            noise_std: 0.5,
            bands: None,
            ..Default::default()
        },
    );
    let params = SearchParams::with_epsilon(8.0);
    for q in workload.queries() {
        let (out, stats) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q.values, params.clone()),
        )
        .unwrap();
        let answers = out.into_answer_set();
        let mut scan_stats = SearchStats::default();
        let expected = seq_scan(
            &store,
            &q.values,
            &params,
            SeqScanMode::Full,
            &mut scan_stats,
        );
        assert_eq!(answers.occurrence_set(), expected.occurrence_set());
        // Stats coherence.
        assert_eq!(stats.answers, answers.len() as u64);
        assert!(stats.postprocessed <= stats.candidates);
        assert_eq!(
            stats.answers + stats.false_alarms,
            stats.postprocessed,
            "verified candidates split into answers and false alarms"
        );
        // The index must beat the naive scan on the cost model.
        assert!(stats.total_cells() < scan_stats.total_cells());
    }
}
