//! End-to-end test of the `warptree` CLI binary: generate → build →
//! info → search → knn → scan, verifying the index search agrees with
//! the exact scan.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_warptree"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn full_cli_pipeline() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("data.csv");
    let idx = dir.join("idx");

    // gen
    let out = run_ok(&[
        "gen",
        "--kind",
        "walk",
        "--sequences",
        "30",
        "--len",
        "60",
        "--seed",
        "9",
        "--out",
        csv.to_str().unwrap(),
    ]);
    assert!(out.contains("wrote 30 sequences"));

    // build (sparse, ME)
    let out = run_ok(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--method",
        "me",
        "--categories",
        "12",
        "--sparse",
        "--batch",
        "7",
        "--out-dir",
        idx.to_str().unwrap(),
    ]);
    assert!(out.contains("built sparse tree index over 30 sequences"));

    // info
    let out = run_ok(&["info", "--index-dir", idx.to_str().unwrap()]);
    assert!(out.contains("sequences:      30"));
    assert!(out.contains("sparse (SST_C)"));

    // Extract a real subsequence from the CSV as the query.
    let first_line = std::fs::read_to_string(&csv)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    let query: String = first_line
        .split(',')
        .skip(4)
        .take(6)
        .collect::<Vec<_>>()
        .join(",");

    // search: the planted subsequence must come back with distance 0.
    let out = run_ok(&[
        "search",
        "--index-dir",
        idx.to_str().unwrap(),
        "--query",
        &query,
        "--epsilon",
        "2",
        "--limit",
        "3",
    ]);
    assert!(out.contains("dist 0.0000"), "missing exact hit:\n{out}");
    let idx_answers = out
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    // scan must agree on the answer count.
    let out = run_ok(&[
        "scan",
        "--input",
        csv.to_str().unwrap(),
        "--query",
        &query,
        "--epsilon",
        "2",
    ]);
    let scan_answers = out
        .lines()
        .next()
        .unwrap()
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();
    assert_eq!(idx_answers, scan_answers, "index vs scan answer count");

    // knn
    let out = run_ok(&[
        "knn",
        "--index-dir",
        idx.to_str().unwrap(),
        "--query",
        &query,
        "--k",
        "3",
    ]);
    assert!(out.contains("3 nearest"));
    assert!(out.contains("dist 0.0000"));

    // Bad input is a clean error, not a panic.
    let out = bin()
        .args(["search", "--index-dir", idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--query"));

    let out = bin().args(["bogus"]).output().unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--backend esa` builds through the CLI, reports itself in `info`,
/// and answers `search`/`knn` with the same output as a tree build of
/// the same data.
#[test]
fn esa_backend_cli_pipeline() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-esa-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("data.csv");
    let tree_idx = dir.join("tree-idx");
    let esa_idx = dir.join("esa-idx");

    run_ok(&[
        "gen", "--kind", "walk", "--sequences", "20", "--len", "40", "--seed", "5", "--out",
        csv.to_str().unwrap(),
    ]);
    let common = [
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--method",
        "me",
        "--categories",
        "10",
        "--sparse",
    ];
    let mut args = common.to_vec();
    args.extend(["--out-dir", tree_idx.to_str().unwrap()]);
    let out = run_ok(&args);
    assert!(out.contains("built sparse tree index over 20 sequences"));
    let mut args = common.to_vec();
    args.extend(["--backend", "esa", "--out-dir", esa_idx.to_str().unwrap()]);
    let out = run_ok(&args);
    assert!(out.contains("built sparse esa index over 20 sequences"));

    let info = run_ok(&["info", "--index-dir", esa_idx.to_str().unwrap()]);
    assert!(info.contains("esa (enhanced suffix array)"), "{info}");
    let info = run_ok(&["info", "--index-dir", tree_idx.to_str().unwrap()]);
    assert!(info.contains("tree (suffix tree)"), "{info}");

    let first_line = std::fs::read_to_string(&csv)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    let query: String = first_line
        .split(',')
        .skip(3)
        .take(5)
        .collect::<Vec<_>>()
        .join(",");
    // Outputs match up to the wall-clock "in N.NNms" fragment.
    let mask_ms = |s: String| -> String {
        match (s.find(" in "), s.find("ms (")) {
            (Some(a), Some(b)) if a < b => format!("{} in Xms ({}", &s[..a], &s[b + 4..]),
            _ => s,
        }
    };
    for cmd in [
        vec!["search", "--query", query.as_str(), "--epsilon", "2", "--limit", "5"],
        vec!["knn", "--query", query.as_str(), "--k", "3"],
    ] {
        let mut t = cmd.clone();
        t.extend(["--index-dir", tree_idx.to_str().unwrap()]);
        let mut e = cmd.clone();
        e.extend(["--index-dir", esa_idx.to_str().unwrap()]);
        assert_eq!(
            mask_ms(run_ok(&t)),
            mask_ms(run_ok(&e)),
            "backends disagree on {:?}",
            cmd[0]
        );
    }

    // Unknown backend names fail cleanly at build time.
    let bogus_dir = dir.join("x");
    let mut args = common.to_vec();
    args.extend(["--backend", "btree", "--out-dir", bogus_dir.to_str().unwrap()]);
    let out = bin().args(&args).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("backend"));

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn gen_is_deterministic() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (a, b) = (dir.join("a.csv"), dir.join("b.csv"));
    for p in [&a, &b] {
        run_ok(&[
            "gen",
            "--kind",
            "stock",
            "--sequences",
            "5",
            "--len",
            "30",
            "--seed",
            "4",
            "--out",
            p.to_str().unwrap(),
        ]);
    }
    assert_eq!(
        std::fs::read_to_string(&a).unwrap(),
        std::fs::read_to_string(&b).unwrap()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn help_lists_commands() {
    let out = run_ok(&["help"]);
    for cmd in ["gen", "build", "info", "search", "knn", "scan"] {
        assert!(out.contains(cmd), "help missing {cmd}");
    }
    // PathBuf used in signature intentionally.
    let _ = PathBuf::new();
}

#[test]
fn append_extends_a_built_index() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-append-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (csv1, csv2, idx) = (dir.join("one.csv"), dir.join("two.csv"), dir.join("idx"));
    run_ok(&[
        "gen",
        "--kind",
        "walk",
        "--sequences",
        "10",
        "--len",
        "40",
        "--seed",
        "1",
        "--out",
        csv1.to_str().unwrap(),
    ]);
    run_ok(&[
        "gen",
        "--kind",
        "walk",
        "--sequences",
        "6",
        "--len",
        "40",
        "--seed",
        "2",
        "--out",
        csv2.to_str().unwrap(),
    ]);
    run_ok(&[
        "build",
        "--input",
        csv1.to_str().unwrap(),
        "--method",
        "me",
        "--categories",
        "10",
        "--sparse",
        "--out-dir",
        idx.to_str().unwrap(),
    ]);
    let out = run_ok(&[
        "append",
        "--input",
        csv2.to_str().unwrap(),
        "--index-dir",
        idx.to_str().unwrap(),
    ]);
    assert!(out.contains("appended 6 sequences"));
    let out = run_ok(&["info", "--index-dir", idx.to_str().unwrap()]);
    assert!(
        out.contains("sequences:      16"),
        "info after append:\n{out}"
    );

    // A query drawn from the appended file must be findable.
    let line = std::fs::read_to_string(&csv2)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    let query: String = line
        .split(',')
        .skip(2)
        .take(5)
        .collect::<Vec<_>>()
        .join(",");
    let out = run_ok(&[
        "search",
        "--index-dir",
        idx.to_str().unwrap(),
        "--query",
        &query,
        "--epsilon",
        "1",
    ]);
    assert!(
        out.contains("dist 0.0000"),
        "appended data searchable:\n{out}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn query_file_accepted() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-qfile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (csv, idx, qf) = (dir.join("d.csv"), dir.join("idx"), dir.join("q.txt"));
    run_ok(&[
        "gen",
        "--kind",
        "walk",
        "--sequences",
        "6",
        "--len",
        "30",
        "--seed",
        "3",
        "--out",
        csv.to_str().unwrap(),
    ]);
    run_ok(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--sparse",
        "--categories",
        "8",
        "--out-dir",
        idx.to_str().unwrap(),
    ]);
    // One value per line.
    let line = std::fs::read_to_string(&csv)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    let vals: Vec<&str> = line.split(',').take(5).collect();
    std::fs::write(&qf, vals.join("\n")).unwrap();
    let out = run_ok(&[
        "search",
        "--index-dir",
        idx.to_str().unwrap(),
        "--query-file",
        qf.to_str().unwrap(),
        "--epsilon",
        "1",
    ]);
    assert!(out.contains("dist 0.0000"), "query-file search:\n{out}");
    // Both at once is an error.
    let out = bin()
        .args([
            "search",
            "--index-dir",
            idx.to_str().unwrap(),
            "--query",
            "1,2",
            "--query-file",
            qf.to_str().unwrap(),
            "--epsilon",
            "1",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn mine_and_forecast_commands() {
    let dir = std::env::temp_dir().join(format!("warptree-cli-apps-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (csv, full_idx, sparse_idx) = (dir.join("d.csv"), dir.join("full"), dir.join("sparse"));
    run_ok(&[
        "gen",
        "--kind",
        "stock",
        "--sequences",
        "20",
        "--len",
        "50",
        "--seed",
        "11",
        "--out",
        csv.to_str().unwrap(),
    ]);
    run_ok(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--categories",
        "10",
        "--out-dir",
        full_idx.to_str().unwrap(),
    ]);
    run_ok(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--categories",
        "10",
        "--sparse",
        "--out-dir",
        sparse_idx.to_str().unwrap(),
    ]);

    // mine works on the full index and names exemplars by ticker.
    let out = run_ok(&[
        "mine",
        "--index-dir",
        full_idx.to_str().unwrap(),
        "--len",
        "4",
        "--k",
        "2",
    ]);
    assert!(out.contains("top 2 motifs"), "mine output:\n{out}");
    assert!(out.contains("STK"), "ticker names shown:\n{out}");

    // mine refuses a sparse index with a helpful message.
    let out = bin()
        .args(["mine", "--index-dir", sparse_idx.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("full index"));

    // forecast produces a horizon of estimates.
    let line = std::fs::read_to_string(&csv)
        .unwrap()
        .lines()
        .next()
        .unwrap()
        .to_string();
    let query: String = line
        .split(',')
        .skip(10)
        .take(8)
        .collect::<Vec<_>>()
        .join(",");
    let out = run_ok(&[
        "forecast",
        "--index-dir",
        full_idx.to_str().unwrap(),
        "--query",
        &query,
        "--epsilon",
        "10",
        "--horizon",
        "2",
    ]);
    assert!(out.contains("+1:"), "forecast output:\n{out}");
    assert!(out.contains("+2:"));
    std::fs::remove_dir_all(&dir).unwrap();
}
