//! The chaos harness: degraded-mode serving under injected disk
//! corruption and network faults.
//!
//! The contract under test (the robustness tentpole): a warptree
//! server under fault injection **never returns a wrong answer**.
//! Every response is one of
//!
//! * byte-identical to the clean answer (matches and distances),
//! * a typed error frame (`corruption_detected`, `overloaded`, …), or
//! * an honestly-labeled partial result — `"partial":true` with
//!   coverage accounting that matches the quarantined-segment set.
//!
//! Disk faults are real on-disk corruption (bit flips in committed
//! pages, caught by the pager's per-page CRC); network faults come
//! from the deterministic [`ChaosStream`] wrapper (torn, dropped and
//! stalled frames). The matrix runs disk-only, net-only, and both —
//! the last concurrently with online ingest and background compaction.

use std::io::{Read, Seek, SeekFrom, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use warptree::{build_index_dir, Categorization};
use warptree_core::search::{QueryRequest, SearchParams};
use warptree_core::sequence::SequenceStore;
use warptree_disk::{
    open_dir_snapshot_with, resolve_dir_with, scrub_dir_with, DegradedError, RealVfs, PAGE_SIZE,
};
use warptree_obs::MetricsRegistry;
use warptree_server::chaos::{ChaosConfig, ChaosStream};
use warptree_server::client::{ingest_request, search_request};
use warptree_server::json::{self, Json};
use warptree_server::proto::{read_frame, write_frame};
use warptree_server::{Client, RetryPolicy, Server, ServerConfig};

fn tmpdir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("warptree-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// Deterministic bounded random walk (no RNG dependency).
fn walk(seed: u64, len: usize) -> Vec<f64> {
    let mut x = seed | 1;
    let mut v = 10.0f64;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v += ((x % 200) as f64 - 100.0) / 50.0;
        v = v.clamp(0.0, 20.0);
        out.push((v * 4.0).round() / 4.0);
    }
    out
}

fn gen_values(seed: u64, sequences: usize, len: usize) -> Vec<Vec<f64>> {
    (0..sequences)
        .map(|i| walk(seed.wrapping_add(i as u64 * 7919), len))
        .collect()
}

fn gen_store(seed: u64, sequences: usize, len: usize) -> SequenceStore {
    SequenceStore::from_values(gen_values(seed, sequences, len))
}

/// Base build + two tail segments, all big enough that every tree file
/// spans multiple pages (so traversals must read past the header page
/// and trip the CRC check on corrupted trees).
fn build_chaos_dir(dir: &Path) -> (String, String) {
    let base = gen_store(1, 24, 24);
    build_index_dir(&base, Categorization::EqualLength(8), false, 64, dir).unwrap();
    warptree::append_index_dir(dir, &gen_store(1000, 36, 28)).unwrap();
    warptree::append_index_dir(dir, &gen_store(2000, 36, 28)).unwrap();
    let resolved = resolve_dir_with(&RealVfs, dir).unwrap();
    let manifest = resolved.manifest.unwrap();
    assert_eq!(manifest.segments.len(), 2);
    for meta in &manifest.segments {
        let len = std::fs::metadata(dir.join(&meta.file)).unwrap().len();
        assert!(
            len > 2 * PAGE_SIZE as u64,
            "segment {} too small ({len} B) to exercise page-level corruption",
            meta.file
        );
    }
    (
        manifest.segments[0].file.clone(),
        manifest.segments[1].file.clone(),
    )
}

/// Flips one byte in every page except page 0 (the header page), so the
/// file still *opens* but any traversal past the header fails its CRC.
/// The root node is written last (post-order), so every query's first
/// node read lands in the corrupted tail of the file.
fn corrupt_pages_after_first(path: &Path) {
    assert!(
        try_corrupt_pages_after_first(path).unwrap(),
        "{} has fewer than 2 pages",
        path.display()
    );
}

/// Fallible variant for races against the compactor (the file may have
/// been merged away, or be too small). Returns whether bytes flipped.
fn try_corrupt_pages_after_first(path: &Path) -> std::io::Result<bool> {
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)?;
    let len = f.metadata()?.len();
    let pages = len.div_ceil(PAGE_SIZE as u64);
    if pages < 2 {
        return Ok(false);
    }
    for p in 1..pages {
        let off = p * PAGE_SIZE as u64 + 17;
        if off >= len {
            break;
        }
        let mut b = [0u8; 1];
        f.seek(SeekFrom::Start(off))?;
        f.read_exact(&mut b)?;
        b[0] ^= 0xA5;
        f.seek(SeekFrom::Start(off))?;
        f.write_all(&b)?;
    }
    f.sync_all()?;
    Ok(true)
}

fn chaos_queries() -> Vec<Vec<f64>> {
    vec![
        walk(99, 6),
        walk(1000, 8), // prefix drawn from segment 1's seed
        walk(2000, 8), // prefix drawn from segment 2's seed
        vec![10.0, 10.0, 10.0, 10.0],
    ]
}

const EPSILON: f64 = 3.0;

// ---------------------------------------------------------------------
// Disk-only: direct API round trip (detection → quarantine → restart →
// heal → full coverage), the recovery-on-open proof.
// ---------------------------------------------------------------------

#[test]
fn quarantine_persists_across_reopen_and_heals_by_scrub() {
    let dir = tmpdir("roundtrip");
    let (seg1, _seg2) = build_chaos_dir(&dir);
    let req = |q: &[f64]| QueryRequest::threshold_params(q, SearchParams::with_epsilon(EPSILON));

    // Clean baseline.
    let clean: Vec<_> = {
        let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
        chaos_queries()
            .iter()
            .map(|q| {
                let dq = snap.run_query_degraded(&req(q)).unwrap();
                assert!(dq.detected.is_empty());
                assert!(
                    dq.output.coverage.is_none(),
                    "clean index carries no coverage"
                );
                dq.output.matches().to_vec()
            })
            .collect()
    };
    assert!(
        clean.iter().any(|m| !m.is_empty()),
        "baseline must find matches or the equivalence checks are vacuous"
    );

    // Corrupt segment 1 on disk, then reopen (a fresh process's view).
    corrupt_pages_after_first(&dir.join(&seg1));
    let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
    let dq = snap.run_query_degraded(&req(&chaos_queries()[0])).unwrap();
    assert_eq!(
        dq.detected,
        vec![seg1.clone()],
        "CRC failure detected mid-query"
    );
    let cov = dq
        .output
        .coverage
        .expect("degraded answer carries coverage");
    assert!(cov.is_partial());
    assert_eq!(
        (
            cov.segments_total,
            cov.segments_answered,
            cov.segments_quarantined
        ),
        (3, 2, 1)
    );
    assert!(
        cov.fraction() > 0.0 && cov.fraction() < 1.0,
        "{}",
        cov.fraction()
    );
    // Partial answers are a subset of the clean answers — corruption
    // removes coverage, it never invents or perturbs matches.
    for m in dq.output.matches() {
        assert!(
            clean[0].contains(m),
            "degraded match {m:?} not in clean answer set"
        );
    }

    // Tombstone it, as the server would after detection.
    warptree_disk::quarantine_segment_with(&RealVfs, &dir, &seg1).unwrap();

    // "Restart": a fresh open must skip the quarantined segment up
    // front (no per-query re-detection) and still label answers.
    let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
    assert_eq!(snap.quarantined.len(), 1);
    assert_eq!(snap.segments.len(), 1, "quarantined segment not opened");
    let dq = snap.run_query_degraded(&req(&chaos_queries()[1])).unwrap();
    assert!(dq.detected.is_empty(), "no re-detection after quarantine");
    let cov = dq.output.coverage.expect("still partial after restart");
    assert_eq!(cov.segments_quarantined, 1);

    // Heal: scrub rebuilds the quarantined segment from the corpus.
    let reg = MetricsRegistry::new();
    let report = scrub_dir_with(&RealVfs, &dir, true, &reg).unwrap();
    assert_eq!(report.healed, vec![seg1]);
    assert!(report.unrecoverable.is_none());

    // Full coverage resumes, byte-identical to the clean baseline.
    let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
    assert!(snap.quarantined.is_empty());
    for (q, want) in chaos_queries().iter().zip(&clean) {
        let dq = snap.run_query_degraded(&req(q)).unwrap();
        assert!(
            dq.output.coverage.is_none(),
            "healed index is no longer partial"
        );
        assert_eq!(
            dq.output.matches(),
            &want[..],
            "healed answers identical for {q:?}"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn base_tree_corruption_is_a_typed_hard_error() {
    let dir = tmpdir("basecorrupt");
    build_chaos_dir(&dir);
    let resolved = resolve_dir_with(&RealVfs, &dir).unwrap();
    corrupt_pages_after_first(&resolved.index_path);
    let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
    let req =
        QueryRequest::threshold_params(&chaos_queries()[0], SearchParams::with_epsilon(EPSILON));
    match snap.run_query_degraded(&req) {
        Err(DegradedError::Corrupt(e)) => {
            let msg = e.to_string();
            assert!(msg.contains("corruption"), "typed corruption error: {msg}");
        }
        other => panic!("base-tree corruption must be a hard typed error, got {other:?}"),
    }
    // And the scrub pass reports it unrecoverable without mutating.
    let report = scrub_dir_with(&RealVfs, &dir, true, &MetricsRegistry::new()).unwrap();
    assert!(report.unrecoverable.is_some());
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Disk-only, through the server: degraded serving, protocol-version
// gating, health/stats surfacing, restart persistence, scrub heal.
// ---------------------------------------------------------------------

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        compact_threshold: 0, // keep the segment layout stable here
        ..ServerConfig::default()
    }
}

fn counts_and_matches(v: &Json) -> (u64, String) {
    let count = v.get("count").and_then(Json::as_u64).unwrap();
    let matches = v.get("matches").unwrap();
    (count, format!("{matches:?}"))
}

#[test]
fn server_serves_partial_results_and_heals_across_restart() {
    let dir = tmpdir("server");
    let (seg1, _seg2) = build_chaos_dir(&dir);
    let queries = chaos_queries();

    // Clean baseline through the server.
    let clean: Vec<(u64, String)> = {
        let handle = Server::start(&dir, server_config()).unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        let out = queries
            .iter()
            .map(|q| {
                let v = client.search(q, EPSILON, None).unwrap();
                assert!(v.get("partial").is_none(), "clean serving is not partial");
                counts_and_matches(&v)
            })
            .collect();
        handle.stop();
        out
    };

    // Corrupt segment 1, restart (fresh caches — detection guaranteed).
    corrupt_pages_after_first(&dir.join(&seg1));
    let handle = Server::start(&dir, server_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();

    // First query detects, quarantines, and answers partially.
    let v = client.search(&queries[0], EPSILON, None).unwrap();
    assert_eq!(v.get("partial").and_then(Json::as_bool), Some(true));
    let cov = v
        .get("coverage")
        .expect("partial response carries coverage");
    assert_eq!(cov.get("segments_total").and_then(Json::as_u64), Some(3));
    assert_eq!(cov.get("segments_answered").and_then(Json::as_u64), Some(2));
    assert_eq!(
        cov.get("segments_quarantined").and_then(Json::as_u64),
        Some(1)
    );
    let fraction = cov.get("fraction").and_then(Json::as_f64).unwrap();
    assert!(fraction > 0.0 && fraction < 1.0, "{fraction}");

    // Health reports degraded (still serving); stats expose the gauge
    // and the partial-query counter.
    let h = client.health().unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("degraded"));
    assert_eq!(
        h.get("quarantined_segments").and_then(Json::as_u64),
        Some(1)
    );
    let s = client.stats().unwrap();
    let metrics = s.get("metrics").unwrap();
    assert_eq!(
        metrics
            .get("gauges")
            .and_then(|g| g.get("server.quarantined_segments"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    assert!(
        metrics
            .get("counters")
            .and_then(|c| c.get("search.partial_queries"))
            .and_then(Json::as_u64)
            .unwrap_or(0)
            >= 1
    );

    // A v1 client (no "version" field) cannot express `partial:true`
    // and must get the typed refusal, not a silently truncated answer.
    let v1_body = format!(
        "{{\"op\":\"search\",\"query\":{},\"epsilon\":{EPSILON}}}",
        warptree_server::client::encode_query(&queries[0])
    );
    let err = client.request(&v1_body).unwrap_err();
    assert_eq!(err.code(), Some("partial_result_unsupported"));

    // Quarantine survives a full server restart (the tombstone is a
    // committed manifest generation, not process state).
    handle.stop();
    let handle = Server::start(&dir, server_config()).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let h = client.health().unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("degraded"));

    // Offline scrub heals while the server is live; the reload watcher
    // picks up the healed generation.
    let report = scrub_dir_with(&RealVfs, &dir, true, &MetricsRegistry::new()).unwrap();
    assert_eq!(report.healed, vec![seg1]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let h = client.health().unwrap();
        if h.get("status").and_then(Json::as_str) == Some("serving") {
            assert_eq!(
                h.get("quarantined_segments").and_then(Json::as_u64),
                Some(0)
            );
            break;
        }
        assert!(
            Instant::now() < deadline,
            "server never un-degraded after heal"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    // Answers match the clean baseline again (generation moved, so
    // compare counts and match arrays, not whole frames).
    for (q, want) in queries.iter().zip(&clean) {
        let v = client.search(q, EPSILON, None).unwrap();
        assert!(v.get("partial").is_none());
        assert_eq!(&counts_and_matches(&v), want);
    }
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn background_scrub_worker_quarantines_and_heals() {
    let dir = tmpdir("bgscrub");
    let (seg1, _seg2) = build_chaos_dir(&dir);
    corrupt_pages_after_first(&dir.join(&seg1));
    let config = ServerConfig {
        scrub_interval: Duration::from_millis(50),
        ..server_config()
    };
    let handle = Server::start(&dir, config).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    // The scrub loop quarantines the corrupt segment and heals it from
    // the corpus in the same pass; wait for the healed counter.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let snap = handle.registry().snapshot();
        if snap
            .counters
            .get("server.scrub_heals")
            .copied()
            .unwrap_or(0)
            >= 1
        {
            break;
        }
        assert!(Instant::now() < deadline, "background scrub never healed");
        std::thread::sleep(Duration::from_millis(25));
    }
    let h = client.health().unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("serving"));
    // Healed index answers with full coverage.
    let v = client.search(&chaos_queries()[1], EPSILON, None).unwrap();
    assert!(v.get("partial").is_none());
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ---------------------------------------------------------------------
// Net-only: the fault-injecting stream wrapper against a clean server.
// ---------------------------------------------------------------------

/// One chaos connection: frames written through a [`ChaosStream`]. On
/// any transport fault the TCP socket is dropped (the server sees a
/// torn frame / EOF) and re-dialed.
struct ChaosConn {
    addr: std::net::SocketAddr,
    stream: Option<ChaosStream<TcpStream>>,
    seed: u64,
    faults: u64,
}

impl ChaosConn {
    fn new(addr: std::net::SocketAddr, seed: u64) -> Self {
        ChaosConn {
            addr,
            stream: None,
            seed,
            faults: 0,
        }
    }

    fn config(&self) -> ChaosConfig {
        ChaosConfig {
            seed: self.seed,
            torn_per_mille: 120,
            drop_per_mille: 120,
            stall_per_mille: 60,
            stall: Duration::from_millis(5),
        }
    }

    /// Sends one request; returns the raw response, or `None` if a
    /// fault (injected or consequent) lost this exchange.
    fn exchange(&mut self, body: &str) -> Option<Vec<u8>> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr).ok()?;
            s.set_read_timeout(Some(Duration::from_millis(500))).ok()?;
            s.set_nodelay(true).ok();
            // Advance the seed so a rebuilt stream doesn't replay the
            // previous stream's fault schedule from the start.
            self.seed = self.seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.stream = Some(ChaosStream::new(s, self.config()));
        }
        let stream = self.stream.as_mut().expect("dialed above");
        let result = write_frame(stream, body.as_bytes()).and_then(|()| read_frame(stream));
        match result {
            Ok(Some(payload)) => Some(payload),
            Ok(None) | Err(_) => {
                // Count and drop the connection; the server must treat
                // the torn/vanished frame as a dead client, nothing
                // more.
                self.faults += 1;
                self.stream = None;
                None
            }
        }
    }
}

#[test]
fn net_chaos_never_corrupts_answers() {
    let dir = tmpdir("netchaos");
    build_chaos_dir(&dir);
    let handle = Server::start(&dir, server_config()).unwrap();
    let queries = chaos_queries();
    let bodies: Vec<String> = queries
        .iter()
        .map(|q| search_request(q, EPSILON, None))
        .collect();

    // Clean responses over a plain client (no faults).
    let mut plain = Client::connect(handle.addr()).unwrap();
    let clean: Vec<String> = bodies
        .iter()
        .map(|b| plain.request_raw(b).unwrap())
        .collect();

    // Fixed seed → reproducible fault schedule (the CI smoke job runs
    // this exact test).
    let mut conn = ChaosConn::new(handle.addr(), 0xC0FFEE);
    let mut delivered = 0u64;
    for round in 0..60 {
        let i = round % bodies.len();
        if let Some(payload) = conn.exchange(&bodies[i]) {
            let text = String::from_utf8(payload).expect("response is UTF-8");
            assert_eq!(
                text, clean[i],
                "response under net chaos differs from clean response"
            );
            delivered += 1;
        }
    }
    assert!(delivered > 0, "some exchanges must survive the fault mix");
    assert!(conn.faults > 0, "the fault mix must actually fire");

    // The server survived every torn/dropped frame and still serves.
    let h = plain.health().unwrap();
    assert_eq!(h.get("status").and_then(Json::as_str), Some("serving"));
    handle.stop();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn retry_with_backoff_rides_out_dropped_connections() {
    // A flaky fake server: drops the first two accepted connections on
    // the floor (the client sees EOF mid-exchange — a transient
    // transport fault), then serves canned responses. The retry loop
    // must reconnect and land the request without surfacing an error.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = std::thread::spawn(move || {
        for i in 0..3 {
            let (mut conn, _) = listener.accept().unwrap();
            if i < 2 {
                drop(conn); // yank the socket: transient for the client
                continue;
            }
            let frame = read_frame(&mut conn).unwrap().expect("request frame");
            assert!(std::str::from_utf8(&frame)
                .unwrap()
                .contains("\"op\":\"search\""));
            write_frame(&mut conn, br#"{"ok":true,"count":0,"matches":[]}"#).unwrap();
        }
    });
    let mut client = Client::connect(addr).unwrap();
    let policy = RetryPolicy {
        max_retries: 5,
        base: Duration::from_millis(5),
        max_backoff: Duration::from_millis(50),
        deadline: Some(Duration::from_secs(10)),
    };
    let v = client
        .request_with_retry(&search_request(&[1.0, 2.0], EPSILON, None), &policy)
        .unwrap();
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    server.join().unwrap();
}

// ---------------------------------------------------------------------
// Both: disk corruption + net chaos, concurrent with online ingest and
// background compaction.
// ---------------------------------------------------------------------

#[test]
fn full_chaos_matrix_with_concurrent_ingest() {
    let dir = tmpdir("matrix");
    build_chaos_dir(&dir);
    let config = ServerConfig {
        compact_threshold: 3,
        compact_interval: Duration::from_millis(50),
        cache_pages: 4,
        cache_nodes: 4,
        ..server_config()
    };
    let handle = Server::start(&dir, config).unwrap();
    let addr = handle.addr();
    let queries = chaos_queries();

    // Writer thread: online ingest with retry, racing the queries and
    // the compactor.
    let writer = std::thread::spawn(move || {
        let policy = RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(10),
            max_backoff: Duration::from_millis(100),
            deadline: Some(Duration::from_secs(20)),
        };
        let mut client = Client::connect(addr).unwrap();
        let mut acked = 0u32;
        for batch in 0..4u64 {
            let body = ingest_request(&gen_values(5000 + batch * 131, 12, 20));
            if client.request_with_retry(&body, &policy).is_ok() {
                acked += 1;
            }
            std::thread::sleep(Duration::from_millis(30));
        }
        acked
    });

    // Main thread: queries through net chaos; halfway through, corrupt
    // a committed segment on disk.
    let allowed_errors = [
        "overloaded",
        "deadline_exceeded",
        "corruption_detected",
        "result_too_large",
        "shutting_down",
        "internal",
    ];
    let mut conn = ChaosConn::new(addr, 0xDEADBEEF);
    let mut parsed = 0u64;
    let mut partials = 0u64;
    for round in 0..80 {
        if round == 30 {
            // The compactor may already have folded the original
            // segments; corrupt whichever tail segment is live right
            // now. Losing the race (file merged away between resolve
            // and open) just means this run exercises the net-only
            // column — the invariants below hold either way.
            if let Ok(resolved) = resolve_dir_with(&RealVfs, &dir) {
                if let Some(meta) = resolved
                    .manifest
                    .as_ref()
                    .and_then(|m| m.segments.iter().find(|s| !s.quarantined))
                {
                    let _ = try_corrupt_pages_after_first(&dir.join(&meta.file));
                }
            }
        }
        let body = search_request(&queries[round % queries.len()], EPSILON, None);
        let Some(payload) = conn.exchange(&body) else {
            continue;
        };
        let text = String::from_utf8(payload).expect("response is UTF-8");
        let v = json::parse(&text).unwrap_or_else(|e| panic!("unparseable response {text:?}: {e}"));
        parsed += 1;
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => {
                // Structural honesty: count matches the match array; a
                // partial flag always comes with consistent coverage.
                let count = v.get("count").and_then(Json::as_u64).unwrap();
                let matches = v.get("matches").and_then(Json::as_arr).unwrap();
                assert_eq!(count as usize, matches.len(), "{text}");
                if v.get("partial").and_then(Json::as_bool) == Some(true) {
                    partials += 1;
                    let cov = v.get("coverage").expect("partial implies coverage");
                    let total = cov.get("segments_total").and_then(Json::as_u64).unwrap();
                    let answered = cov.get("segments_answered").and_then(Json::as_u64).unwrap();
                    let quarantined = cov
                        .get("segments_quarantined")
                        .and_then(Json::as_u64)
                        .unwrap();
                    assert!(answered < total, "{text}");
                    assert_eq!(answered + quarantined, total, "{text}");
                    let f = cov.get("fraction").and_then(Json::as_f64).unwrap();
                    assert!(f > 0.0 && f <= 1.0, "{text}");
                } else {
                    assert!(v.get("coverage").is_none(), "{text}");
                }
            }
            Some(false) => {
                let code = v
                    .get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str)
                    .unwrap_or("");
                assert!(
                    allowed_errors.contains(&code),
                    "unexpected error code {code:?} in {text}"
                );
            }
            None => panic!("response missing \"ok\": {text}"),
        }
    }
    let acked = writer.join().expect("writer thread");
    assert!(parsed > 0, "some exchanges must survive the fault mix");
    assert!(acked >= 1, "ingest with retry must land despite chaos");
    handle.stop();

    // Aftermath: heal offline, then prove the surviving directory
    // answers exactly like a clean snapshot of the same (final) corpus.
    let report = scrub_dir_with(&RealVfs, &dir, true, &MetricsRegistry::new()).unwrap();
    assert!(report.unrecoverable.is_none(), "{report}");
    let snap = open_dir_snapshot_with(&RealVfs, &dir, 8, 64).unwrap();
    assert!(snap.quarantined.is_empty());
    for q in &queries {
        let req = QueryRequest::threshold_params(q, SearchParams::with_epsilon(EPSILON));
        let dq = snap.run_query_degraded(&req).unwrap();
        assert!(
            dq.output.coverage.is_none(),
            "healed index serves full coverage"
        );
        let (clean_out, _) = snap.run_query(&req).unwrap();
        assert_eq!(dq.output.matches(), clean_out.matches());
    }
    let _ = partials; // may be 0 if every degraded exchange was eaten by net faults
    std::fs::remove_dir_all(&dir).unwrap();
}
