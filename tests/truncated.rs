//! The §8 truncated indexes: storing only suffix prefixes up to the
//! maximum answer length must not change any answer of a length-bounded
//! search, while shrinking the index.

use proptest::prelude::*;
use std::sync::Arc;
use warptree::prelude::*;
use warptree_suffix::{
    build_full, build_full_truncated, build_sparse, build_sparse_truncated, TruncateSpec,
};

fn db_strategy() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((0i32..8).prop_map(|v| v as f64), 1..16),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncated trees answer length-bounded queries exactly like the
    /// untruncated trees (and therefore like SeqScan).
    #[test]
    fn truncated_equals_full_for_bounded_queries(
        db in db_strategy(),
        q in prop::collection::vec((0i32..8).prop_map(|v| v as f64), 1..4),
        max_len in 1u32..6,
    ) {
        let store = SequenceStore::from_values(db);
        let alphabet = Alphabet::max_entropy(&store, 3).unwrap();
        let cat = Arc::new(alphabet.encode_store(&store));
        let spec = TruncateSpec {
            max_answer_len: max_len,
            min_answer_len: 1,
        };
        let params = SearchParams::with_epsilon(1.5).length_range(1, max_len);

        let req = QueryRequest::threshold_params(&q, params.clone());
        let full = build_full(cat.clone());
        let expected = run_query(&full, &alphabet, &store, &req)
            .unwrap()
            .0
            .into_answer_set();

        let trunc_full = build_full_truncated(cat.clone(), spec);
        trunc_full.check_invariants();
        prop_assert_eq!(trunc_full.depth_limit(), Some(max_len));
        let a = run_query(&trunc_full, &alphabet, &store, &req)
            .unwrap()
            .0
            .into_answer_set();
        prop_assert_eq!(a.occurrence_set(), expected.occurrence_set());

        let trunc_sparse = build_sparse_truncated(cat.clone(), spec);
        trunc_sparse.check_invariants();
        let b = run_query(&trunc_sparse, &alphabet, &store, &req)
            .unwrap()
            .0
            .into_answer_set();
        prop_assert_eq!(b.occurrence_set(), expected.occurrence_set());

        // Truncation never grows the tree.
        prop_assert!(trunc_full.node_count() <= full.node_count());
        let sparse = build_sparse(cat);
        prop_assert!(trunc_sparse.node_count() <= sparse.node_count());
    }

    /// Window-derived truncation (the paper's exact proposal): with a
    /// query-length range and window known up front, the truncated index
    /// answers windowed queries of any in-range length exactly.
    #[test]
    fn window_derived_truncation(
        db in db_strategy(),
        q in prop::collection::vec((0i32..8).prop_map(|v| v as f64), 2..5),
        w in 0u32..3,
    ) {
        let store = SequenceStore::from_values(db);
        let alphabet = Alphabet::equal_length(&store, 3).unwrap();
        let cat = Arc::new(alphabet.encode_store(&store));
        let spec = TruncateSpec::for_queries(2, 4, w);
        let tree = build_sparse_truncated(cat.clone(), spec);
        let params = SearchParams::with_epsilon(2.0).windowed(w);
        let (got, _) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q, params.clone()),
        )
        .unwrap();
        let got = got.into_answer_set();
        let mut stats = SearchStats::default();
        let expected =
            seq_scan(&store, &q, &params, SeqScanMode::Full, &mut stats);
        prop_assert_eq!(got.occurrence_set(), expected.occurrence_set());
    }
}

/// Regression (Theorem 3 boundary): a sparse suffix whose lead run is
/// *exactly* the truncation depth limit must neither skip nor
/// double-count shifted (`D_tw-lb2`) answers. The run here is formed at
/// a categorization boundary — three distinct values collapsing into
/// one symbol — so the shifted suffixes exist only through Definition 4,
/// and the stored prefix length (`max_answer_len + run − 1`) is
/// exercised at its exact edge.
#[test]
fn sparse_lead_run_at_depth_limit_boundary() {
    // Categories split at 4.5: [1.0, 2.0, 0.5] is one symbol-run of
    // length 3 == max_answer_len; the tail run [9.0, 8.5] crosses into
    // the other category. The second sequence ends inside a run.
    let store = SequenceStore::from_values(vec![
        vec![1.0, 2.0, 0.5, 9.0, 8.5],
        vec![9.0, 8.0, 1.0, 0.0, 2.0],
    ]);
    let alphabet = Alphabet::equal_length(&store, 2).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    // Sanity: the lead run really sits at the boundary.
    assert_eq!(cat.run_len(SeqId(0), 0), 3);
    assert_eq!(cat.run_len(SeqId(1), 2), 3);
    let spec = TruncateSpec {
        max_answer_len: 3,
        min_answer_len: 1,
    };
    let tree = build_sparse_truncated(cat.clone(), spec);
    tree.check_invariants();
    for eps in [0.0, 1.0, 4.0, 20.0] {
        let params = SearchParams::with_epsilon(eps).length_range(1, 3);
        let mut stats = SearchStats::default();
        let expected = seq_scan(&store, &[1.5, 1.5], &params, SeqScanMode::Full, &mut stats);
        let (got, got_stats) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&[1.5, 1.5], params.clone()),
        )
        .unwrap();
        let got = got.into_answer_set();
        assert_eq!(
            got.occurrence_set(),
            expected.occurrence_set(),
            "eps={eps}: shifted suffixes at the run/depth-limit boundary"
        );
        // Not double-counted: every verified candidate is a distinct
        // (start, length) pair, so verifications can never exceed the
        // number of distinct subsequences in range.
        let distinct: u64 = store
            .iter()
            .map(|(_, s)| {
                let n = s.len() as u64;
                (1..=3u64).map(|l| n.saturating_sub(l - 1)).sum::<u64>()
            })
            .sum();
        assert!(
            got_stats.postprocessed <= distinct,
            "eps={eps}: {} verifications exceed the {} distinct in-range subsequences",
            got_stats.postprocessed,
            distinct
        );
        // The parallel traversal agrees byte-for-byte at the boundary.
        let par = params.clone().parallel(4);
        let (par_got, par_stats) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&[1.5, 1.5], par),
        )
        .unwrap();
        let par_got = par_got.into_answer_set();
        assert_eq!(par_got.matches(), got.matches(), "eps={eps}");
        assert_eq!(par_stats, got_stats, "eps={eps}");
    }
}

#[test]
fn truncated_index_is_smaller() {
    let store = stock_corpus(&StockConfig {
        sequences: 40,
        mean_len: 120,
        ..Default::default()
    });
    let alphabet = Alphabet::max_entropy(&store, 20).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let full = build_full(cat.clone());
    let trunc = build_full_truncated(
        cat,
        TruncateSpec {
            max_answer_len: 24,
            min_answer_len: 8,
        },
    );
    // The saving is in stored label symbols (the paper's index-space
    // metric with inline labels): long leaf edges are cut at depth 24.
    let label_symbols = |t: &SuffixTree| -> u64 {
        (0..t.node_count() as u32)
            .map(|id| t.node(id).label.len as u64)
            .sum()
    };
    let (fs, ts) = (label_symbols(&full), label_symbols(&trunc));
    assert!(
        ts * 2 < fs,
        "truncation should at least halve stored label symbols: {ts} vs {fs}"
    );
    assert!(trunc.node_count() <= full.node_count());
}

#[test]
fn unbounded_search_over_truncated_index_is_rejected() {
    let store = SequenceStore::from_values(vec![vec![1.0, 2.0, 3.0, 4.0]]);
    let alphabet = Alphabet::singleton(&store).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let tree = build_full_truncated(
        cat,
        TruncateSpec {
            max_answer_len: 2,
            min_answer_len: 1,
        },
    );
    // length_range(1, 3) exceeds the stored depth 2 -> typed error.
    let params = SearchParams::with_epsilon(1.0).length_range(1, 3);
    let err = run_query(
        &tree,
        &alphabet,
        &store,
        &QueryRequest::threshold_params(&[1.0], params),
    )
    .unwrap_err();
    assert!(
        matches!(err, CoreError::DepthLimitExceeded { .. }),
        "{err:?}"
    );
}

#[test]
fn truncated_tree_roundtrips_through_disk() {
    let store = SequenceStore::from_values(vec![
        vec![1.0, 2.0, 3.0, 2.0, 1.0, 2.0],
        vec![3.0, 3.0, 3.0, 1.0],
    ]);
    let alphabet = Alphabet::equal_length(&store, 3).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let spec = TruncateSpec {
        max_answer_len: 3,
        min_answer_len: 1,
    };
    let tree = build_sparse_truncated(cat.clone(), spec);
    let path = std::env::temp_dir().join(format!("warptree-trunc-{}.wt", std::process::id()));
    warptree_disk::write_tree(&tree, &path).unwrap();
    let disk = DiskTree::open(&path, cat, 8, 32).unwrap();
    assert_eq!(disk.header().depth_limit, Some(3));
    let params = SearchParams::with_epsilon(1.0).length_range(1, 3);
    let q = [2.0, 3.0];
    let req = QueryRequest::threshold_params(&q, params.clone());
    let mem_ans = run_query(&tree, &alphabet, &store, &req)
        .unwrap()
        .0
        .into_answer_set();
    let disk_ans = run_query(&disk, &alphabet, &store, &req)
        .unwrap()
        .0
        .into_answer_set();
    assert_eq!(mem_ans.occurrence_set(), disk_ans.occurrence_set());
    std::fs::remove_file(&path).unwrap();
}
