//! The §8 application loop (search → cluster → forecast) as a
//! deterministic integration test: planted regimes must be recovered as
//! clusters, and their known continuations must drive the forecast.

use warptree::core::cluster::cluster_matches;
use warptree::core::predict::{forecast, Weighting};
use warptree::prelude::*;

/// Builds a corpus with two planted regimes following a common prefix:
/// after the pattern `[10, 20, 30]`, half the sequences rise by +5/day
/// ("bull"), half fall by −5/day ("bear").
fn regime_corpus() -> (SequenceStore, Vec<Occurrence>) {
    let mut store = SequenceStore::new();
    let mut plants = Vec::new();
    for i in 0..8u32 {
        let mut v = vec![50.0, 51.0, 49.0]; // noise-ish preamble
        let start = v.len() as u32;
        v.extend([10.0, 20.0, 30.0]); // the queried pattern
        let step = if i % 2 == 0 { 5.0 } else { -5.0 };
        let mut last: f64 = 30.0;
        for _ in 0..4 {
            last += step;
            v.push(last);
        }
        let id = store.push(Sequence::new(v));
        plants.push(Occurrence::new(id, start, 3));
    }
    (store, plants)
}

#[test]
fn regimes_cluster_and_forecast_correctly() {
    let (store, plants) = regime_corpus();
    let index = Index::exact(&store).unwrap();
    let query = [10.0, 20.0, 30.0];
    let params = SearchParams::with_epsilon(0.0);
    let (answers, _) = index.search(&query, &params);

    // Every plant is found exactly.
    let occs = answers.occurrence_set();
    for p in &plants {
        assert!(occs.binary_search(p).is_ok(), "plant {p} missing");
    }
    let matches: Vec<Match> = answers
        .matches()
        .iter()
        .copied()
        .filter(|m| plants.contains(&m.occ))
        .collect();
    assert_eq!(matches.len(), 8);

    // Forecast over ALL matches: bull and bear cancel to ~0 mean with a
    // wide range.
    let all = forecast(&store, &matches, 4, Weighting::Uniform).unwrap();
    assert!(all.mean[0].abs() < 1e-9, "mixed mean {:?}", all.mean);
    assert_eq!(all.low[0], -5.0);
    assert_eq!(all.high[0], 5.0);
    assert_eq!(all.support, vec![8, 8, 8, 8]);

    // Clustering the matches *with their continuations appended* splits
    // bull from bear.
    let extended: Vec<Match> = matches
        .iter()
        .map(|m| Match {
            occ: Occurrence::new(m.occ.seq, m.occ.start, m.occ.len + 4),
            dist: m.dist,
        })
        .collect();
    let clusters = cluster_matches(&store, &extended, 2, 20);
    assert_eq!(clusters.len(), 2);
    for c in &clusters {
        assert_eq!(c.members.len(), 4, "balanced regimes");
        // All members of a cluster share the same parity (regime).
        let parity: Vec<u32> = c
            .members
            .iter()
            .map(|&m| extended[m].occ.seq.0 % 2)
            .collect();
        assert!(
            parity.iter().all(|&p| p == parity[0]),
            "mixed regime in cluster: {parity:?}"
        );
        // And forecasting within the cluster is decisive.
        let members: Vec<Match> = c.members.iter().map(|&m| matches[m]).collect();
        let f = forecast(&store, &members, 4, Weighting::Uniform).unwrap();
        let expected = if parity[0] == 0 { 5.0 } else { -5.0 };
        assert_eq!(
            f.mean,
            vec![expected, 2.0 * expected, 3.0 * expected, 4.0 * expected]
        );
        assert_eq!(f.low, f.high); // regimes are deterministic
    }
}

#[test]
fn motif_to_forecast_pipeline() {
    // Mine the most frequent shape, then forecast its continuations —
    // the full rule-discovery loop without any hand-picked query.
    use std::sync::Arc;
    use warptree_suffix::{build_full, top_motifs};

    let (store, _) = regime_corpus();
    let alphabet = Alphabet::max_entropy(&store, 12).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let tree = build_full(cat);
    let motifs = top_motifs(&tree, 3, 3);
    assert!(!motifs.is_empty());
    // The planted pattern occurs 8 times; it must be the top length-3
    // motif (the preamble repeats too, but is only 1 window per seq).
    let top = &motifs[0];
    assert!(top.count >= 8, "top motif count {}", top.count);
    let matches: Vec<Match> = top
        .occurrences
        .iter()
        .map(|&(seq, start)| Match {
            occ: Occurrence::new(seq, start, 3),
            dist: 0.0,
        })
        .collect();
    let f = forecast(&store, &matches, 2, Weighting::Uniform);
    assert!(f.is_some());
    assert!(f.unwrap().support[0] >= 8);
}
