//! End-to-end test of the serving CLI: `gen` → `build` → `warptree
//! serve` in the background → `warptree bench-client` burst against it
//! → protocol shutdown → clean exit, with the committed benchmark JSON
//! validated against its schema.

use std::io::{BufRead, BufReader};
use std::process::{Command, Stdio};

use warptree::server::json::{self, Json};
use warptree::server::Client;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_warptree"))
}

fn run_ok(args: &[&str]) -> String {
    let out = bin().args(args).output().expect("binary runs");
    assert!(
        out.status.success(),
        "command {:?} failed:\n{}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn serve_and_bench_client_round_trip() {
    let dir = std::env::temp_dir().join(format!("warptree-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("data.csv");
    let idx = dir.join("idx");
    let bench_out = dir.join("bench.json");

    run_ok(&[
        "gen",
        "--kind",
        "walk",
        "--sequences",
        "20",
        "--len",
        "60",
        "--seed",
        "7",
        "--out",
        csv.to_str().unwrap(),
    ]);
    run_ok(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--categories",
        "10",
        "--out-dir",
        idx.to_str().unwrap(),
    ]);

    // Serve in the background on an ephemeral port; the first stdout
    // line advertises the bound address.
    let mut server = bin()
        .args([
            "serve",
            idx.to_str().unwrap(),
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve starts");
    let mut first_line = String::new();
    BufReader::new(server.stdout.take().unwrap())
        .read_line(&mut first_line)
        .unwrap();
    let addr = first_line
        .trim()
        .rsplit(" on ")
        .next()
        .expect("serve announces its address")
        .to_string();
    assert!(
        first_line.starts_with("serving "),
        "unexpected banner: {first_line}"
    );

    // A closed-loop burst, committed to JSON.
    let out = run_ok(&[
        "bench-client",
        "--addr",
        &addr,
        "--input",
        csv.to_str().unwrap(),
        "--queries",
        "8",
        "--connections",
        "4",
        "--requests",
        "60",
        "--out",
        bench_out.to_str().unwrap(),
    ]);
    assert!(out.contains("throughput"), "bench summary:\n{out}");

    // The emitted report honors the BENCH_serve.json schema.
    let report = json::parse(&std::fs::read_to_string(&bench_out).unwrap()).unwrap();
    assert_eq!(report.get("sent").and_then(Json::as_u64), Some(60));
    assert_eq!(report.get("connections").and_then(Json::as_u64), Some(4));
    assert_eq!(report.get("errors").and_then(Json::as_u64), Some(0));
    assert!(report.get("ok").and_then(Json::as_u64).unwrap_or(0) > 0);
    let latency = report.get("latency_us").expect("latency block");
    for q in ["p50", "p95", "p99", "max"] {
        assert!(
            latency.get(q).and_then(Json::as_u64).is_some(),
            "missing {q}"
        );
    }
    assert!(
        report
            .get("throughput_rps")
            .and_then(Json::as_f64)
            .unwrap_or(0.0)
            > 0.0
    );
    // Server-side split (from the v4 per-response timings block):
    // queue wait and service percentiles, plus the connection-failure
    // counter, are part of the committed schema.
    assert_eq!(report.get("conn_failures").and_then(Json::as_u64), Some(0));
    for block in ["queue_wait_us", "service_us"] {
        let split = report.get(block).expect(block);
        for q in ["p50", "p95", "p99"] {
            assert!(
                split.get(q).and_then(Json::as_u64).is_some(),
                "missing {block}.{q}"
            );
        }
    }

    // Protocol shutdown drains the server and the process exits cleanly.
    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    let status = server.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");

    std::fs::remove_dir_all(&dir).unwrap();
}
