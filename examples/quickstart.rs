//! Quickstart: index a handful of sequences and run a time-warping
//! subsequence search.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Demonstrates the paper's introductory scenario: two stocks sampled at
//! different rates are identical under time warping, so a search with
//! ε = 0 finds both — something no Euclidean-distance index can do.

use warptree::prelude::*;

fn main() {
    // S1: daily closing prices. S2: the same movement sampled every
    // other day (the paper's §1 example).
    let store = SequenceStore::from_values(vec![
        vec![20.0, 20.0, 21.0, 21.0, 20.0, 20.0, 23.0, 23.0],
        vec![20.0, 21.0, 20.0, 23.0],
        vec![55.0, 54.0, 57.0, 60.0, 59.0, 59.5],
    ]);

    // Build a sparse, max-entropy-categorized suffix-tree index — the
    // paper's best configuration (SST_C with ME categorization).
    let index = Index::sparse(&store, Categorization::MaxEntropy(6)).expect("valid categorization");
    println!(
        "indexed {} sequences ({} elements) into {} tree nodes",
        store.len(),
        store.total_len(),
        index.tree().node_count()
    );

    // Query: the pattern of S2. Find every subsequence within warping
    // distance 1.0 of it.
    let query = [20.0, 21.0, 20.0, 23.0];
    let params = SearchParams::with_epsilon(1.0);
    let (answers, stats) = index.search(&query, &params);

    let mut sorted = answers.clone();
    sorted.sort();
    println!(
        "\n{} answers within ε = {} (filter visited {} nodes, pruned {} \
         branches, {} candidates post-processed):",
        sorted.len(),
        params.epsilon,
        stats.nodes_visited,
        stats.branches_pruned,
        stats.postprocessed
    );
    for m in sorted.matches().iter().take(12) {
        println!(
            "  {}  dist {:.2}  values {:?}",
            m.occ,
            m.dist,
            store.occurrence_values(m.occ)
        );
    }

    // The headline: the differently-sampled S1 matches exactly.
    let s1_match = answers
        .matches()
        .iter()
        .find(|m| m.occ.seq == SeqId(0) && m.occ.len == 8)
        .expect("S1 must match under time warping");
    println!(
        "\nS1 (8 days) matched the 4-element query with distance {} — \
         different sampling rates, identical shape.",
        s1_match.dist
    );

    // Everything the index returns is verified exact — compare with the
    // brute-force scan.
    let (scan, _) = index.seq_scan(&query, &params);
    assert_eq!(answers.occurrence_set(), scan.occurrence_set());
    println!("verified against sequential scan: identical answer sets ✓");
}
