//! ECG motif search: find heartbeats similar to a template beat even
//! when heart rate varies — the paper's medical-signal motivation
//! ("matching of voice, audio and medical signals
//! (electrocardiograms)").
//!
//! ```text
//! cargo run --release --example ecg_motifs
//! ```
//!
//! Generates synthetic ECG-like traces whose beats are stretched or
//! compressed (varying heart rate) and corrupted with noise, then finds
//! every occurrence of the template beat. Because beats of a faster
//! heart are *shorter*, Euclidean matching at a fixed length would miss
//! them; the time-warping search does not.

use warptree::prelude::*;

/// One synthetic heartbeat sampled with `width` points: a small P wave,
/// a sharp QRS complex, and a T wave.
fn beat(width: usize, amplitude: f64) -> Vec<f64> {
    (0..width)
        .map(|i| {
            let t = i as f64 / width as f64;
            let p = 0.15 * gauss(t, 0.18, 0.035);
            let q = -0.2 * gauss(t, 0.40, 0.018);
            let r = 1.0 * gauss(t, 0.46, 0.016);
            let s = -0.25 * gauss(t, 0.52, 0.018);
            let tw = 0.35 * gauss(t, 0.75, 0.06);
            amplitude * (p + q + r + s + tw)
        })
        .collect()
}

fn gauss(t: f64, mu: f64, sigma: f64) -> f64 {
    (-(t - mu) * (t - mu) / (2.0 * sigma * sigma)).exp()
}

/// A deterministic pseudo-noise source (keeps the example seed-stable
/// without pulling `rand` into it).
struct Noise(u64);
impl Noise {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }
}

fn main() {
    // Build 6 ECG traces. Each trace strings together beats whose width
    // varies with the "heart rate" of that segment.
    let mut noise = Noise(0xEC6);
    let mut store = SequenceStore::new();
    let mut planted = 0usize;
    for trace in 0..6 {
        let mut values = Vec::new();
        for b in 0..12 {
            // Heart rate wanders: beat width 18..34 samples.
            let width = 18 + ((trace * 7 + b * 5) % 17);
            let mut beat_vals = beat(width, 1.0);
            for v in &mut beat_vals {
                *v += 0.03 * noise.next();
            }
            values.extend(beat_vals);
            planted += 1;
        }
        store.push(Sequence::new(values));
    }
    println!(
        "generated {} ECG traces, {} samples, {} true beats",
        store.len(),
        store.total_len(),
        planted
    );

    // The template: a canonical beat at the nominal width.
    let template = beat(24, 1.0);

    let index =
        Index::sparse(&store, Categorization::MaxEntropy(24)).expect("valid categorization");

    // Beats vary ±40 % in duration: a warping window of 12 admits widths
    // 12..36 while pruning absurd alignments.
    let eps = 0.055 * template.len() as f64;
    let params = SearchParams::with_epsilon(eps).windowed(12);
    let t0 = std::time::Instant::now();
    let (answers, stats) = index.search(&template, &params);
    println!(
        "search took {:.2?} ({} candidates post-processed, {} answers)",
        t0.elapsed(),
        stats.postprocessed,
        answers.len()
    );

    // Collapse overlapping matches: keep the best match per region.
    let mut picked = answers.non_overlapping();
    picked.sort_by_key(|m| m.occ);

    println!("\ndetected beats (non-overlapping, best-first):");
    let mut lens: Vec<u32> = Vec::new();
    for m in picked.iter().take(15) {
        println!("  {}  width {:>2}  dist {:.3}", m.occ, m.occ.len, m.dist);
        lens.push(m.occ.len);
    }
    println!("  … {} total detections", picked.len());
    lens.sort_unstable();
    if let (Some(&lo), Some(&hi)) = (lens.first(), lens.last()) {
        println!(
            "\nmatched beat widths span {lo}–{hi} samples — the same \
             template found fast and slow heartbeats alike."
        );
    }
    assert!(
        picked.len() >= planted / 2,
        "should detect most planted beats"
    );
}
