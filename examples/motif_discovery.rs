//! Motif discovery + similarity search: mine the most frequent shape
//! motifs from a stock database, then use the *same* index to find all
//! their near-occurrences — the paper's §8 "rule discovery" application.
//!
//! ```text
//! cargo run --release --example motif_discovery
//! ```
//!
//! Pipeline:
//! 1. z-normalize the price series (match shape, not level);
//! 2. categorize and build a full suffix tree;
//! 3. mine the top length-8 motifs and the longest repeated shape
//!    directly from the tree structure;
//! 4. turn the best motif back into a numeric query (category midpoints)
//!    and run the time-warping search to count near-occurrences of any
//!    length.

use std::sync::Arc;
use warptree::core::normalize::{normalize_store, z_normalize};
use warptree::prelude::*;
use warptree_suffix::{build_full, longest_repeated, top_motifs};

fn main() {
    // Raw market data, then shape-normalized.
    let raw = stock_corpus(&StockConfig {
        sequences: 120,
        mean_len: 160,
        seed: 0x40E1F,
        ..Default::default()
    });
    let store = normalize_store(&raw, z_normalize);
    println!(
        "normalized {} series ({} points) to unit shape space",
        store.len(),
        store.total_len()
    );

    // Coarse alphabet: motifs should generalize, not memorize.
    let alphabet = Alphabet::max_entropy(&store, 8).unwrap();
    let cat = Arc::new(alphabet.encode_store(&store));
    let tree = build_full(cat.clone());
    println!(
        "full suffix tree: {} nodes over an alphabet of {}",
        tree.node_count(),
        alphabet.len()
    );

    // --- mine ------------------------------------------------------------
    let motif_len = 8;
    let motifs = top_motifs(&tree, motif_len, 5);
    println!("\ntop length-{motif_len} shape motifs:");
    for (rank, m) in motifs.iter().enumerate() {
        println!(
            "  #{}  {:>4} occurrences  shape {}",
            rank + 1,
            m.count,
            render(&m.symbols, alphabet.len())
        );
    }
    let longest = longest_repeated(&tree, 3).expect("repeats exist");
    println!(
        "\nlongest shape repeated ≥ 3 times: {} symbols, {} occurrences",
        longest.symbols.len(),
        longest.count
    );

    // --- search ----------------------------------------------------------
    // Lift the top motif back to numbers via category midpoints.
    let top = &motifs[0];
    let query: Vec<f64> = top
        .symbols
        .iter()
        .map(|&s| {
            let c = alphabet.category(s);
            (c.lb + c.ub) / 2.0
        })
        .collect();
    // Choosing ε as the sum of category half-widths guarantees every
    // mined (exact-category) occurrence stays within range of the
    // midpoint query via the diagonal alignment.
    let eps: f64 = top
        .symbols
        .iter()
        .map(|&s| {
            let c = alphabet.category(s);
            (c.ub - c.lb) / 2.0
        })
        .sum::<f64>()
        + 1e-9;
    let params = SearchParams::with_epsilon(eps).windowed(3);
    let metrics = SearchMetrics::new();
    let t0 = std::time::Instant::now();
    let candidates = filter_tree(&tree, &alphabet, &query, &params, &metrics);
    let answers = postprocess(&store, &query, &candidates, &params, &metrics);
    println!(
        "\nnear-occurrences of motif #1 (ε = {eps:.1}, window 3): {} \
         matches of lengths {}..{} in {:.2?}",
        answers.len(),
        answers
            .matches()
            .iter()
            .map(|m| m.occ.len)
            .min()
            .unwrap_or(0),
        answers
            .matches()
            .iter()
            .map(|m| m.occ.len)
            .max()
            .unwrap_or(0),
        t0.elapsed()
    );
    // Every exact occurrence the miner reported must be rediscovered by
    // the search (it has warping distance ≈ within-category spread).
    let found: std::collections::HashSet<(u32, u32)> = answers
        .matches()
        .iter()
        .map(|m| (m.occ.seq.0, m.occ.start))
        .collect();
    let rediscovered = top
        .occurrences
        .iter()
        .filter(|&&(s, p)| found.contains(&(s.0, p)))
        .count();
    println!(
        "{} of the {} mined occurrences rediscovered by the ε-search ✓",
        rediscovered, top.count
    );
    assert_eq!(
        rediscovered as u64, top.count,
        "every mined occurrence must be rediscovered"
    );
}

/// Renders a symbol string as a level chart.
fn render(symbols: &[u32], alpha: usize) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    symbols
        .iter()
        .map(|&s| BARS[(s as usize * (BARS.len() - 1)) / (alpha - 1).max(1)])
        .collect()
}
