//! The paper's §8 application loop on one screen: **search** a recent
//! price history against the market, **cluster** the matching episodes
//! into regimes, and **forecast** what followed each regime — the
//! "predictions, clustering and rule discovery" the paper motivates.
//!
//! ```text
//! cargo run --release --example analyst_workbench
//! ```

use warptree::core::cluster::cluster_matches;
use warptree::core::predict::{forecast, Weighting};
use warptree::prelude::*;

fn main() {
    // The market and "today's" subject stock.
    let store = stock_corpus(&StockConfig {
        sequences: 250,
        mean_len: 220,
        seed: 0xA11A,
        ..Default::default()
    });
    let subject = SeqId(42);
    let subject_len = store.get(subject).len() as u32;
    // The last 15 closes of the subject are the query history.
    let history = store.get(subject).subseq(subject_len - 15, 15).to_vec();
    println!(
        "subject {subject}: last {} closes in [{:.2}, {:.2}]",
        history.len(),
        history.iter().cloned().fold(f64::INFINITY, f64::min),
        history.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );

    // --- search ----------------------------------------------------------
    let index =
        Index::sparse(&store, Categorization::MaxEntropy(60)).expect("valid categorization");
    let eps = 0.6 * history.len() as f64;
    let params = SearchParams::with_epsilon(eps).windowed(5);
    let t0 = std::time::Instant::now();
    let (answers, _) = index.search(&history, &params);
    // Distinct episodes only, and not the trivial self-match.
    let episodes: Vec<Match> = answers
        .non_overlapping()
        .into_iter()
        .filter(|m| !(m.occ.seq == subject && m.occ.end() == subject_len))
        .take(24)
        .collect();
    println!(
        "found {} similar episodes across the market in {:.2?} \
         ({} raw matches)",
        episodes.len(),
        t0.elapsed(),
        answers.len()
    );
    assert!(episodes.len() >= 4, "need episodes to analyze");

    // --- cluster -----------------------------------------------------------
    let clusters = cluster_matches(&store, &episodes, 3, 25);
    println!("\nregimes (k-medoids over D_tw):");
    for (i, c) in clusters.iter().enumerate() {
        let medoid = &episodes[c.medoid];
        println!(
            "  regime {}: {} episodes, exemplar {} ({} days), \
             within-cost {:.1}",
            i + 1,
            c.members.len(),
            medoid.occ,
            medoid.occ.len,
            c.cost
        );
    }

    // --- forecast ----------------------------------------------------------
    println!("\nwhat followed each regime (5-day horizon, Δ from last close):");
    for (i, c) in clusters.iter().enumerate() {
        let members: Vec<Match> = c.members.iter().map(|&m| episodes[m]).collect();
        match forecast(
            &store,
            &members,
            5,
            Weighting::InverseDistance { lambda: 0.5 },
        ) {
            Some(f) => {
                let path: Vec<String> = f.mean.iter().map(|d| format!("{d:+.2}")).collect();
                println!(
                    "  regime {}: mean {}  (day-1 range {:+.2}..{:+.2}, \
                     support {})",
                    i + 1,
                    path.join(" → "),
                    f.low[0],
                    f.high[0],
                    f.support[0]
                );
            }
            None => println!("  regime {}: no continuations", i + 1),
        }
    }

    // Sanity: the overall forecast is available too.
    let overall = forecast(
        &store,
        &episodes,
        5,
        Weighting::InverseDistance { lambda: 0.5 },
    )
    .expect("episodes have continuations");
    let last = *history.last().unwrap();
    println!(
        "\nblended 1-day-ahead estimate: {:.2} (today {:.2}, {} episodes)",
        last + overall.mean[0],
        last,
        overall.support[0]
    );
}
