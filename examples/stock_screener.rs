//! Stock screener: find stocks whose price history contains a pattern
//! similar to a reference movement — the paper's motivating application
//! ("detecting stocks that have similar growth patterns").
//!
//! ```text
//! cargo run --release --example stock_screener
//! ```
//!
//! Builds a 300-stock synthetic corpus, takes one stock's recent
//! "V-shaped recovery" as the reference pattern, and screens the whole
//! database for subsequences of *any* length that warp onto it. Results
//! are ranked by distance and deduplicated per stock.

use warptree::prelude::*;

fn main() {
    // A synthetic market: 300 stocks with the paper's price-band mixture.
    let store = stock_corpus(&StockConfig {
        sequences: 300,
        mean_len: 250,
        seed: 0xCAFE,
        ..Default::default()
    });
    println!(
        "market: {} stocks, {} closing prices total",
        store.len(),
        store.total_len()
    );

    // Reference pattern: a V-shaped recovery, hand-drawn around $40.
    // Time warping lets it match recoveries that played out over more
    // (or fewer) days.
    let pattern: Vec<f64> = vec![
        44.0, 43.0, 41.5, 40.0, 38.5, 38.0, 38.5, 40.0, 42.0, 44.5, 46.0,
    ];

    let t0 = std::time::Instant::now();
    let index =
        Index::sparse(&store, Categorization::MaxEntropy(60)).expect("valid categorization");
    println!(
        "built SST_C/ME(60) index: {} nodes in {:.2?}",
        index.tree().node_count(),
        t0.elapsed()
    );

    // Screen: tolerance scales with pattern length (≈ $0.9/day warped).
    let eps = 0.9 * pattern.len() as f64;
    // A warping window keeps matches between half and double the
    // pattern's duration and speeds up the search (paper §8).
    let params = SearchParams::with_epsilon(eps).windowed(6);
    let t0 = std::time::Instant::now();
    let (answers, stats) = index.search(&pattern, &params);
    println!(
        "screened in {:.2?}: {} raw matches, {} candidates verified, \
         {} branches pruned",
        t0.elapsed(),
        answers.len(),
        stats.postprocessed,
        stats.branches_pruned
    );

    // Rank: best (lowest-distance) match per stock.
    let ranked = answers.best_per_sequence();

    println!("\ntop V-recovery candidates (best window per stock):");
    println!(
        "{:>6} {:>12} {:>8} {:>8}  shape",
        "stock", "window", "days", "dist"
    );
    for m in ranked.iter().take(10) {
        let values = store.occurrence_values(m.occ);
        println!(
            "{:>8} {:>12} {:>8} {:>8.2}  {}",
            store.display_name(m.occ.seq),
            format!("[{}..{}]", m.occ.start + 1, m.occ.start + m.occ.len),
            m.occ.len,
            m.dist,
            sparkline(values)
        );
    }
    if ranked.is_empty() {
        println!("  (no stock matched — try a larger ε)");
    } else {
        // Matches of different lengths prove the "different lengths"
        // part of the title.
        let lens: std::collections::HashSet<u32> = ranked.iter().map(|m| m.occ.len).collect();
        println!(
            "\nmatched durations range over {:?} days — warping matched \
             recoveries of different speeds.",
            {
                let mut v: Vec<u32> = lens.into_iter().collect();
                v.sort_unstable();
                v
            }
        );
    }
}

/// Renders values as a unicode sparkline.
fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (lo, hi) = values
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
            (l.min(v), h.max(v))
        });
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|&v| BARS[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}
