//! Multivariate search (paper §8): find where a 2-D movement pattern
//! occurs inside GPS-like trajectories, regardless of the speed it was
//! walked at.
//!
//! ```text
//! cargo run --release --example gps_trajectories
//! ```
//!
//! Each trajectory is a sequence of (x, y) points. Points are
//! grid-categorized per dimension; the combined cell index is an
//! ordinary symbol, so the very same suffix-tree machinery indexes the
//! multivariate data — exactly the extension the paper sketches.

use std::sync::Arc;
use warptree::core::multivariate::{mv_seq_scan, mv_sim_search, GridAlphabet, MvSequence, MvStore};
use warptree::prelude::*;
use warptree_suffix::build_sparse;

/// Where the planted loops start.
const PLAZA: (f64, f64) = (60.0, 40.0);

/// Deterministic pseudo-noise.
struct Noise(u64);
impl Noise {
    fn next(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    }
}

/// A loop around the block: right, up, left, down — walked with `speed`
/// points per side.
fn block_loop(origin: (f64, f64), side: f64, speed: usize) -> Vec<f64> {
    let mut pts = Vec::new();
    let legs = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)];
    let (mut x, mut y) = origin;
    for (dx, dy) in legs {
        for _ in 0..speed {
            pts.extend_from_slice(&[x, y]);
            x += dx * side / speed as f64;
            y += dy * side / speed as f64;
        }
    }
    pts
}

fn main() {
    let mut noise = Noise(0x6F5);
    let mut store = MvStore::new();

    // Build 8 trajectories: random wandering with a "block loop" planted
    // in three of them, each walked at a different speed.
    let mut planted = Vec::new();
    for t in 0..8 {
        let mut pts: Vec<f64> = Vec::new();
        let (mut x, mut y) = (50.0 + t as f64 * 3.0, 40.0);
        let wander = |pts: &mut Vec<f64>, x: &mut f64, y: &mut f64, n: usize, noise: &mut Noise| {
            for _ in 0..n {
                pts.extend_from_slice(&[*x, *y]);
                *x += noise.next() * 2.0;
                *y += noise.next() * 2.0;
            }
        };
        wander(&mut pts, &mut x, &mut y, 30, &mut noise);
        if t % 3 == 0 {
            // Everyone loops around the same plaza, at their own pace.
            let speed = 4 + t; // different walking speeds
            let start = pts.len() / 2;
            pts.extend(block_loop(PLAZA, 20.0, speed));
            planted.push((t, start, speed));
        }
        wander(&mut pts, &mut x, &mut y, 30, &mut noise);
        store.push(MvSequence::new(2, pts));
    }
    println!(
        "{} trajectories, {} points total; loop planted in {:?} \
         (trajectory, point offset, pts/side)",
        store.len(),
        store.seqs().iter().map(|s| s.len()).sum::<usize>(),
        planted
    );

    // The query: the canonical plaza loop at 6 points per side. Time
    // warping handles differing *speeds*; translation invariance would
    // need normal-form preprocessing (the paper's related work [11]),
    // so the loops share the plaza's coordinate frame.
    let query = MvSequence::new(2, block_loop(PLAZA, 20.0, 6));

    let grid = GridAlphabet::equal_length(store.seqs(), 12).unwrap();
    let cat = Arc::new(store.encode(&grid));
    let tree = build_sparse(cat);
    println!(
        "grid: {} × {} cells; sparse tree over grid symbols",
        grid.axes()[0].len(),
        grid.axes()[1].len(),
    );

    // The planted loops trace the same path, only resampled: a modest ε
    // per point suffices.
    let eps = 1.5 * query.len() as f64;
    let params = SearchParams::with_epsilon(eps);
    let t0 = std::time::Instant::now();
    let (answers, stats) = mv_sim_search(&tree, &grid, &store, &query, &params);
    println!(
        "index search: {} answers in {:.2?} ({} candidates verified)",
        answers.len(),
        t0.elapsed(),
        stats.postprocessed
    );

    // Verify against the multivariate scan.
    let mut scan_stats = SearchStats::default();
    let t0 = std::time::Instant::now();
    let scan = mv_seq_scan(&store, &query, &params, &mut scan_stats);
    println!(
        "exact scan:   {} answers in {:.2?}",
        scan.len(),
        t0.elapsed()
    );
    assert_eq!(answers.occurrence_set(), scan.occurrence_set());

    // Report the best match per trajectory.
    let mut best: std::collections::HashMap<SeqId, Match> = std::collections::HashMap::new();
    for m in answers.matches() {
        best.entry(m.occ.seq)
            .and_modify(|b| {
                if m.dist < b.dist {
                    *b = *m;
                }
            })
            .or_insert(*m);
    }
    let mut ranked: Vec<Match> = best.into_values().collect();
    ranked.sort_by(|a, b| a.dist.partial_cmp(&b.dist).unwrap());
    println!("\nbest loop match per trajectory:");
    for m in &ranked {
        println!(
            "  {}  {} points  dist/point {:.2}",
            m.occ,
            m.occ.len,
            m.dist / m.occ.len as f64
        );
    }
    let found: std::collections::HashSet<u32> = ranked.iter().map(|m| m.occ.seq.0).collect();
    for (t, _, _) in &planted {
        assert!(
            found.contains(&(*t as u32)),
            "planted loop in trajectory {t} not found"
        );
    }
    println!(
        "\nall {} planted loops found despite different walking speeds ✓",
        planted.len()
    );
}
