//! Disk-resident indexing: build a suffix-tree index incrementally with
//! binary merges (paper §4.1), persist the corpus, then reopen
//! everything from disk and query it — the full life cycle of a
//! database larger than memory.
//!
//! ```text
//! cargo run --release --example disk_index
//! ```

use std::sync::Arc;
use warptree::prelude::*;
use warptree_disk::{load_corpus, save_corpus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("warptree-example-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // ---- Build phase (imagine this is an ingest job) -------------------
    let store = stock_corpus(&StockConfig {
        sequences: 400,
        mean_len: 200,
        seed: 7,
        ..Default::default()
    });
    let alphabet = warptree::core::categorize::Alphabet::max_entropy(&store, 40)?;
    let cat = Arc::new(alphabet.encode_store(&store));

    // Persist the corpus (sequences + categorization).
    let corpus_path = dir.join("market.corpus");
    let corpus_bytes = save_corpus(&store, &alphabet, &corpus_path)?;
    println!(
        "corpus: {} sequences -> {} ({} KiB)",
        store.len(),
        corpus_path.display(),
        corpus_bytes / 1024
    );

    // Build the sparse index in batches of 50 sequences, merging partial
    // trees pairwise — bounded memory regardless of database size.
    let index_path = dir.join("market.sstc");
    let t0 = std::time::Instant::now();
    let index_bytes = IncrementalBuilder::new(cat.clone(), TreeKind::Sparse, 50, dir.clone())
        .build(&index_path)?;
    println!(
        "index: built incrementally (batches of 50, binary merges) in \
         {:.2?} -> {} KiB on disk",
        t0.elapsed(),
        index_bytes / 1024
    );
    drop((store, alphabet, cat)); // everything below comes from disk

    // ---- Query phase (a fresh process would start here) ----------------
    let (store, alphabet, cat) = load_corpus(&corpus_path)?;
    // 64 pages of buffer pool ≈ 512 KiB of memory for the tree.
    let tree = DiskTree::open(&index_path, cat, 64, 1024)?;
    println!(
        "reopened: {} stored suffixes, sparse = {}",
        warptree::core::search::IndexBackend::suffix_count(&tree),
        tree.header().sparse,
    );

    let queries = QueryWorkload::draw(
        &store,
        &QueryConfig {
            count: 3,
            mean_len: 18,
            noise_std: 0.4,
            ..Default::default()
        },
    );
    let params = SearchParams::with_epsilon(12.0);
    for (i, q) in queries.queries().iter().enumerate() {
        let t0 = std::time::Instant::now();
        let (out, stats) = run_query(
            &tree,
            &alphabet,
            &store,
            &QueryRequest::threshold_params(&q.values, params.clone()),
        )
        .unwrap();
        let answers = out.into_answer_set();
        let top = answers.top_k(3);
        println!(
            "\nquery {} (len {}, drawn from {}): {} answers in {:.2?} \
             ({} nodes visited)",
            i + 1,
            q.values.len(),
            q.source,
            answers.len(),
            t0.elapsed(),
            stats.nodes_visited
        );
        for m in top {
            println!("   best: {}  dist {:.2}", m.occ, m.dist);
        }
    }

    let io = tree.io_stats();
    println!(
        "\npager: {} page reads, {} cache hits ({:.1}% hit rate)",
        io.pages_read,
        io.cache_hits,
        100.0 * io.cache_hits as f64 / (io.cache_hits + io.pages_read).max(1) as f64
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
