//! Offline shim for `criterion`: a minimal wall-clock timing harness
//! exposing the API subset this workspace's benches use
//! (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `sample_size`, `Bencher::iter`, `BenchmarkId`, and the
//! `criterion_group!`/`criterion_main!` macros).
//!
//! No statistics, warm-up heuristics, or reports — each benchmark runs
//! `sample_size` timed samples and prints the per-iteration median.

use std::fmt::Display;
use std::time::Instant;

/// Mirror of `criterion::BenchmarkId`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Mirror of `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration nanoseconds of the completed run.
    result_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration, then `samples` timed samples.
        std::hint::black_box(f());
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }

    pub fn iter_with_setup<S, O, G, F>(&mut self, mut setup: G, mut f: F)
    where
        G: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        std::hint::black_box(f(setup()));
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(f(input));
            times.push(start.elapsed().as_nanos() as f64);
        }
        times.sort_by(|a, b| a.total_cmp(b));
        self.result_ns = times[times.len() / 2];
    }
}

fn run_bench(group: &str, id: &BenchmarkId, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result_ns: f64::NAN,
    };
    f(&mut b);
    let name = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{}/{}", group, id.id)
    };
    if b.result_ns.is_nan() {
        println!("{name:<60} (no iter() call)");
    } else if b.result_ns >= 1_000_000.0 {
        println!("{name:<60} {:>12.3} ms", b.result_ns / 1_000_000.0);
    } else if b.result_ns >= 1_000.0 {
        println!("{name:<60} {:>12.3} µs", b.result_ns / 1_000.0);
    } else {
        println!("{name:<60} {:>12.1} ns", b.result_ns);
    }
}

/// Mirror of `criterion::BenchmarkGroup` (lifetime-free: the shim keeps
/// no per-group state beyond its name and sample count).
pub struct BenchmarkGroup {
    name: String,
    samples: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&self.name, &id.into(), self.samples, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(&self.name, &id, self.samples, &mut |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup { name, samples: 10 }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench("", &id.into(), 10, &mut f);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Re-export for benches that import it from criterion rather than
/// `std::hint` (upstream criterion provides this alias too).
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran >= 4); // warm-up + 3 samples
    }
}
