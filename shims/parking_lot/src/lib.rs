//! Offline shim for `parking_lot`, backed by `std::sync`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the tiny API subset it actually uses. Semantics
//! match `parking_lot` for non-poisoned use: `lock()`/`read()`/`write()`
//! return guards directly (poisoning is ignored, as `parking_lot` has
//! no poisoning).

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutex with `parking_lot`'s panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RwLock with `parking_lot`'s panic-free `read()`/`write()` signatures.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
