//! Offline shim for `proptest`, covering the subset this workspace
//! uses: the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy` with `prop_map`/`prop_flat_map`/`prop_filter`, range and
//! tuple strategies, `Just`, `any`, and `prop::collection::vec`.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the sampled inputs' case number), and the random stream is this
//! workspace's own deterministic generator (seeded per test name), so
//! regressions reproduce run-to-run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies by the `proptest!` harness.
pub type TestRng = StdRng;

/// Deterministic per-test RNG: seeded from an FNV-1a hash of the test
/// name so each test has a stable, independent stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

/// Mirror of `proptest::test_runner::TestCaseError`. The shim's
/// `prop_assert*` macros panic rather than returning this, but helper
/// functions may still declare `Result<(), TestCaseError>` and use `?`.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
            TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

/// Mirror of `proptest::test_runner::Config` (subset).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the suite fast while still
        // exercising plenty of structure per test.
        ProptestConfig { cases: 64 }
    }
}

/// Value-generation strategy (mirror of `proptest::strategy::Strategy`,
/// minus shrinking: `generate` replaces the `ValueTree` machinery).
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn prop_filter<R, F>(self, whence: R, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        R: std::fmt::Display,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.to_string(),
            f,
        }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Mirror of `proptest::strategy::BoxedStrategy`.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        // Upstream rejects-and-resamples with a global cap; 1000 local
        // tries is far beyond what the workspace's light filters need.
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}': too many rejected samples", self.whence);
    }
}

/// Mirror of `proptest::strategy::Just`.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, G);

/// Mirror of `proptest::arbitrary::Arbitrary` (subset backing `any`).
pub trait Arbitrary: Sized {
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// Mirror of `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Mirror of `proptest::collection` (subset: `vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of `proptest::collection::SizeRange` (inclusive bounds).
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Mirror of `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Mirror of `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_ne!($a, $b, $($fmt)+);
    };
}

/// Mirror of the `proptest!` macro: each `#[test]` fn is run for
/// `cases` deterministic samples of its `pat in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::ProptestConfig as ::core::default::Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let mut __run = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                };
                if let ::core::result::Result::Err(e) = __run() {
                    panic!("proptest case #{__case} failed: {e}");
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn filter_and_map_compose() {
        let s = (0u32..100)
            .prop_filter("even", |v| v % 2 == 0)
            .prop_map(|v| v + 1);
        let mut rng = crate::test_rng("filter_and_map_compose");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 1 && v < 101);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_binds_tuples_and_vecs(
            (a, b) in (0u32..4).prop_flat_map(|a| (Just(a), a..5)),
            v in prop::collection::vec(0i32..10, 1..8),
            flag in any::<bool>(),
        ) {
            prop_assert!(a < 4 && b >= a && b < 5);
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(flag as u8 <= 1, true);
        }
    }
}
