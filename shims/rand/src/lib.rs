//! Offline shim for `rand` 0.8, covering the API subset this workspace
//! uses: `Rng::gen_range` over integer/float ranges, `Rng::gen`,
//! `SeedableRng::seed_from_u64`, `rngs::StdRng`, and `random`.
//!
//! The generator is xoshiro256++ seeded via splitmix64 — high quality
//! and deterministic, but the streams differ from upstream `rand`, so
//! seeded output is stable across runs of this workspace only.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator state (xoshiro256++).
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = (self.s[0].wrapping_add(self.s[3]))
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Trait mirroring `rand::SeedableRng` for the subset in use.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from the generator (mirror of
/// `rand::distributions::Standard` sampling via `Rng::gen`).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 random bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Raw 64-bit source, mirror of `rand::RngCore` (subset).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Ranges accepted by [`Rng::gen_range`], mirror of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(&mut Wrap(rng));
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let unit = <$t as Standard>::sample_standard(&mut Wrap(rng));
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Adapter so blanket float sampling can borrow an unsized `RngCore`.
struct Wrap<'a, R: RngCore + ?Sized>(&'a mut R);

impl<R: RngCore + ?Sized> RngCore for Wrap<'_, R> {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Mirror of `rand::Rng` for the subset in use.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::*;

    /// Mirror of `rand::rngs::StdRng` (different stream from upstream).
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng(Xoshiro256 {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            })
        }
    }

    /// Mirror of `rand::rngs::SmallRng`.
    pub type SmallRng = StdRng;
}

/// Mirror of `rand::random` — process-global, seeded from the clock
/// and a per-call counter.
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    let mut sm = nanos ^ COUNTER.fetch_add(0x9E37_79B9, Ordering::Relaxed);
    let mut rng = rngs::StdRng::seed_from_u64(splitmix64(&mut sm));
    T::sample_standard(&mut rng)
}

/// Mirror of `rand::thread_rng` (fresh clock-seeded generator; the
/// subset in use never relies on thread-local stream continuity).
pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(random::<u64>())
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
